"""Dataset persistence: NPZ round-trips and CSV import/export.

The paper's system consumes "an ad-hoc featurized dataset" (§3); real
deployments hand those over as files.  This module gives :class:`Dataset`
two on-disk forms:

* **NPZ** — lossless binary round-trip (X with NaNs, y of any dtype, the
  task string, the categorical column tuple);
* **CSV** — the interchange format users actually have.  ``from_csv``
  parses a headered file, ordinal-encodes non-numeric columns (recording
  them in ``Dataset.categorical``), maps empty fields to NaN, and infers
  the task from the label column unless told otherwise.

Only the standard library and NumPy are used — no pandas in this
environment.
"""

from __future__ import annotations

import csv

import numpy as np

from .dataset import Dataset

__all__ = ["save_npz", "load_npz", "to_csv", "from_csv"]

#: CSV cell spellings treated as missing values
_MISSING = {"", "na", "nan", "null", "none", "?"}


# ---------------------------------------------------------------- NPZ --
def save_npz(data: Dataset, path: str) -> None:
    """Write a lossless binary snapshot of the dataset."""
    np.savez_compressed(
        path,
        X=data.X,
        y=data.y,
        task=np.array(data.task),
        name=np.array(data.name),
        categorical=np.asarray(data.categorical, dtype=np.int64),
    )


def load_npz(path: str) -> Dataset:
    """Read a dataset written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as z:
        return Dataset(
            name=str(z["name"]),
            X=z["X"],
            y=z["y"],
            task=str(z["task"]),
            categorical=tuple(int(i) for i in z["categorical"]),
        )


# ---------------------------------------------------------------- CSV --
def to_csv(data: Dataset, path: str, label: str = "target") -> None:
    """Write the dataset as a headered CSV (features f0..fK, then label).

    Missing values (NaN) are written as empty cells; categorical codes are
    written as integers.
    """
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow([f"f{i}" for i in range(data.d)] + [label])
        cat = set(data.categorical)
        for i in range(data.n):
            row = []
            for j in range(data.d):
                v = data.X[i, j]
                if np.isnan(v):
                    row.append("")
                elif j in cat or float(v).is_integer():
                    row.append(str(int(v)))
                else:
                    row.append(repr(float(v)))
            row.append(data.y[i])
            w.writerow(row)


def _parse_column(raw: list[str]) -> tuple[np.ndarray, bool]:
    """(values, is_categorical) for one column of raw CSV strings.

    Numeric columns (allowing missing cells) come back as float64 with
    NaNs; anything else is ordinal-encoded by sorted category label.
    """
    vals = np.empty(len(raw), dtype=np.float64)
    numeric = True
    for i, cell in enumerate(raw):
        cell = cell.strip()
        if cell.lower() in _MISSING:
            vals[i] = np.nan
            continue
        try:
            vals[i] = float(cell)
        except ValueError:
            numeric = False
            break
    if numeric:
        return vals, False
    # categorical: ordinal-encode the labels, missing stays NaN
    cleaned = [c.strip() for c in raw]
    present = sorted({c for c in cleaned if c.lower() not in _MISSING})
    code = {c: float(k) for k, c in enumerate(present)}
    vals = np.array(
        [np.nan if c.lower() in _MISSING else code[c] for c in cleaned],
        dtype=np.float64,
    )
    return vals, True


def from_csv(
    path: str,
    label: str | int = -1,
    task: str | None = None,
    name: str | None = None,
) -> Dataset:
    """Parse a headered CSV into a :class:`Dataset`.

    ``label`` selects the target column by header name or position
    (default: last column).  ``task`` overrides task inference
    (``binary``/``multiclass``/``regression``/``classification``).
    """
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        rows = [r for r in reader if r]
    if not rows:
        raise ValueError(f"{path} contains a header but no data rows")
    if any(len(r) != len(header) for r in rows):
        raise ValueError(f"{path} has rows of differing width")
    if isinstance(label, str):
        try:
            label_idx = header.index(label)
        except ValueError:
            raise ValueError(
                f"label column {label!r} not in header {header}"
            ) from None
    else:
        label_idx = int(label) % len(header)

    cols = list(zip(*rows))
    y_raw = [c.strip() for c in cols[label_idx]]
    if any(c.lower() in _MISSING for c in y_raw):
        raise ValueError("label column contains missing values")
    y_vals, y_is_cat = _parse_column(list(y_raw))
    y: np.ndarray = np.array(y_raw) if y_is_cat else y_vals

    feature_idx = [j for j in range(len(header)) if j != label_idx]
    if not feature_idx and task != "forecast":
        raise ValueError("no feature columns besides the label")
    X = np.empty((len(rows), len(feature_idx)), dtype=np.float64)
    categorical = []
    for out_j, j in enumerate(feature_idx):
        X[:, out_j], is_cat = _parse_column(list(cols[j]))
        if is_cat:
            categorical.append(out_j)
    if not feature_idx:
        # a bare series file: synthesise the time index as the feature
        X = np.arange(len(rows), dtype=np.float64).reshape(-1, 1)

    # late import: core.automl depends on data.dataset, not the reverse
    from ..core.automl import infer_task

    resolved = infer_task(y, task)
    return Dataset(
        name=name or str(path),
        X=X,
        y=y if y_is_cat else (y_vals if resolved in ("regression", "forecast")
                              else y_vals.astype(np.int64)),
        task=resolved,
        categorical=tuple(categorical),
    )
