"""The 53-dataset benchmark suite (scaled synthetic stand-ins).

One entry per dataset of the paper's evaluation — the 39 classification
tasks of the AutoML Benchmark (Tables 6-7) plus the 14 PMLB regression
tasks (Table 8).  Original row/feature counts are recorded from the paper;
the generated stand-ins are scaled down (DESIGN.md §2) while preserving

* the task type and (capped) class count,
* the relative size ordering (the radar charts order spokes by size),
* the feature-mix profile (categoricals / missing values where the
  original dataset has them), and
* a spread of structure difficulty so no single learner dominates.

Use :func:`load_dataset` / :func:`suite_names` / :func:`iter_suite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dataset import Dataset
from .generators import make_classification, make_regression

__all__ = ["DatasetSpec", "SUITE", "suite_names", "load_dataset", "iter_suite"]

# scaling knobs: keep everything laptop-sized but large enough that trial
# cost still matters relative to second-scale budgets (the regime the
# paper's cost-aware search is designed for)
_MIN_N, _MAX_N, _DIV = 1000, 8000, 50
_MAX_D, _MAX_D_WIDE, _MAX_K = 24, 48, 12


def _scaled_n(orig_n: int) -> int:
    return int(np.clip(orig_n // _DIV, _MIN_N, _MAX_N))


def _scaled_d(orig_d: int) -> int:
    return _MAX_D_WIDE if orig_d > 500 else min(orig_d, _MAX_D)


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: paper-reported shape + generator configuration."""

    name: str
    task: str  # binary | multiclass | regression
    orig_n: int
    orig_d: int
    n_classes: int = 2
    structure: str = "nonlinear"
    class_sep: float = 1.0
    flip_y: float = 0.02
    cat_frac: float = 0.0
    missing_frac: float = 0.0
    imbalance: float = 0.0
    noise: float = 1.0  # regression only
    seed: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Scaled instance count of the stand-in dataset."""
        return _scaled_n(self.orig_n)

    @property
    def d(self) -> int:
        """Scaled feature count of the stand-in dataset."""
        return _scaled_d(self.orig_d)

    @property
    def size(self) -> int:
        """Paper's ordering key: #instances x #features (original)."""
        return self.orig_n * self.orig_d

    def load(self) -> Dataset:
        """Instantiate the synthetic stand-in dataset for this spec."""
        if self.task == "regression":
            return make_regression(
                self.n, self.d, structure=self.structure, noise=self.noise,
                cat_frac=self.cat_frac, missing_frac=self.missing_frac,
                seed=self.seed, name=self.name,
            )
        return make_classification(
            self.n, self.d, n_classes=min(self.n_classes, _MAX_K),
            structure=self.structure, class_sep=self.class_sep,
            flip_y=self.flip_y, cat_frac=self.cat_frac,
            missing_frac=self.missing_frac, imbalance=self.imbalance,
            seed=self.seed, name=self.name,
        )


def _b(name, n, d, seed, **kw):
    return DatasetSpec(name, "binary", n, d, seed=seed, **kw)


def _m(name, n, d, k, seed, **kw):
    return DatasetSpec(name, "multiclass", n, d, n_classes=k, seed=seed, **kw)


def _r(name, n, d, seed, **kw):
    return DatasetSpec(name, "regression", n, d, seed=seed, **kw)


# --- Table 6: binary classification (22) -------------------------------
_BINARY = [
    _b("blood-transfusion", 748, 4, 101, structure="linear", class_sep=0.8),
    _b("Australian", 690, 14, 102, cat_frac=0.3, class_sep=1.2),
    _b("credit-g", 1000, 20, 103, cat_frac=0.5, class_sep=0.7, imbalance=0.4),
    _b("phoneme", 5404, 5, 104, structure="nonlinear", class_sep=1.1),
    _b("kc1", 2109, 21, 105, imbalance=0.7, class_sep=0.8),
    _b("sylvine", 5124, 20, 106, structure="xor", class_sep=1.4),
    _b("kr-vs-kp", 3196, 36, 107, cat_frac=1.0, structure="xor", class_sep=2.0),
    _b("jasmine", 2984, 144, 108, structure="nonlinear", class_sep=1.0),
    _b("christine", 5418, 1636, 109, structure="linear", class_sep=0.6),
    _b("Amazon_employee_access", 32769, 9, 110, cat_frac=1.0, imbalance=0.88,
       class_sep=0.9),
    _b("nomao", 34465, 118, 111, class_sep=1.6, missing_frac=0.02),
    _b("adult", 48842, 14, 112, cat_frac=0.5, imbalance=0.5, class_sep=1.2,
       missing_frac=0.01),
    _b("bank_marketing", 45211, 16, 113, cat_frac=0.5, imbalance=0.76,
       class_sep=1.0),
    _b("KDDCup09_appetency", 50000, 230, 114, imbalance=0.96, class_sep=0.5,
       missing_frac=0.1),
    _b("APSFailure", 76000, 170, 115, imbalance=0.96, class_sep=1.5,
       missing_frac=0.08),
    _b("numerai28.6", 96320, 21, 116, structure="linear", class_sep=0.15,
       flip_y=0.1),
    _b("higgs", 98050, 28, 117, structure="nonlinear", class_sep=0.7),
    _b("MiniBooNE", 130064, 50, 118, class_sep=1.3),
    _b("guillermo", 20000, 4296, 119, structure="nonlinear", class_sep=0.8),
    _b("riccardo", 20000, 4296, 120, structure="linear", class_sep=1.8),
    _b("Albert", 425240, 78, 121, class_sep=0.6, cat_frac=0.3,
       missing_frac=0.05),
    _b("Airlines", 539383, 7, 122, cat_frac=0.4, class_sep=0.6),
]

# --- Table 7: multiclass classification (17) ----------------------------
_MULTI = [
    _m("car", 1728, 6, 4, 201, cat_frac=1.0, structure="xor", class_sep=1.5),
    _m("vehicle", 846, 18, 4, 202, structure="clusters", class_sep=1.0),
    _m("segment", 2310, 19, 7, 203, structure="clusters", class_sep=1.8),
    _m("mfeat-factors", 2000, 216, 10, 204, structure="clusters", class_sep=2.0),
    _m("cnae-9", 1080, 856, 9, 205, structure="clusters", class_sep=1.5),
    _m("jungle_chess", 44819, 6, 3, 206, structure="xor", class_sep=1.8),
    _m("shuttle", 58000, 9, 7, 207, structure="clusters", class_sep=2.5,
       imbalance=0.0),
    _m("Helena", 65196, 27, 100, 208, structure="clusters", class_sep=0.5),
    _m("connect-4", 67557, 42, 3, 209, cat_frac=1.0, structure="xor",
       class_sep=1.0),
    _m("Jannis", 83733, 54, 4, 210, class_sep=0.7),
    _m("fabert", 8237, 800, 7, 211, structure="clusters", class_sep=0.8),
    _m("volkert", 58310, 180, 10, 212, structure="clusters", class_sep=0.9),
    _m("dilbert", 10000, 2000, 5, 213, structure="nonlinear", class_sep=1.2),
    _m("Dionis", 416188, 60, 355, 214, structure="clusters", class_sep=1.0),
    _m("Covertype", 581012, 54, 7, 215, structure="nonlinear", class_sep=1.1,
       cat_frac=0.2),
    _m("Fashion-MNIST", 70000, 784, 10, 216, structure="clusters",
       class_sep=1.3),
    _m("Robert", 10000, 7200, 10, 217, structure="clusters", class_sep=0.6),
]

# --- Table 8: PMLB regression (14) --------------------------------------
_REG = [
    _r("pol", 15000, 48, 301, structure="poly", noise=0.5),
    _r("bng_echomonths", 17496, 9, 302, structure="multiplicative", noise=2.0),
    _r("houses", 20640, 8, 303, structure="friedman1", noise=1.5),
    _r("house_8L", 22784, 8, 304, structure="multiplicative", noise=2.0),
    _r("house_16H", 22784, 16, 305, structure="multiplicative", noise=2.5),
    _r("bng_lowbwt", 31104, 9, 306, structure="friedman3", noise=1.5),
    _r("2dplanes", 40768, 10, 307, structure="plane", noise=1.0),
    _r("fried", 40768, 10, 308, structure="friedman1", noise=1.0),
    _r("mv", 40768, 10, 309, structure="multiplicative", noise=0.5),
    _r("bng_breastTumor", 116640, 9, 310, structure="step", noise=3.0),
    _r("bng_pwLinear", 177147, 10, 311, structure="plane", noise=1.0),
    _r("bng_pbc", 1000000, 18, 312, structure="friedman1", noise=2.0),
    _r("bng_pharynx", 1000000, 11, 313, structure="step", noise=2.0),
    _r("poker", 1025010, 10, 314, structure="xor_reg", noise=0.5,
       extra={"note": "hand-rank-like discrete interactions"}),
]
# poker's structure name is special-cased below: discrete interactions.
_REG[-1] = _r("poker", 1025010, 10, 314, structure="multiplicative", noise=0.5)

SUITE: dict[str, DatasetSpec] = {
    s.name: s for s in (*_BINARY, *_MULTI, *_REG)
}
assert len(SUITE) == 53, f"suite must have 53 datasets, has {len(SUITE)}"


def suite_names(task: str | None = None, sort_by_size: bool = True) -> list[str]:
    """Names in the suite, optionally filtered by task, ordered by size
    (the paper's radar-chart ordering)."""
    specs = [s for s in SUITE.values() if task is None or s.task == task]
    if sort_by_size:
        specs.sort(key=lambda s: s.size)
    return [s.name for s in specs]


def load_dataset(name: str) -> Dataset:
    """Instantiate a suite dataset by name."""
    try:
        return SUITE[name].load()
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; see suite_names()") from None


def iter_suite(task: str | None = None):
    """Yield (spec, dataset) pairs in size order."""
    for name in suite_names(task):
        yield SUITE[name], SUITE[name].load()
