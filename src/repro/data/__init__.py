"""Data substrate: dataset container, generators, benchmark suite,
selectivity-estimation workloads."""

from .binned import (
    BinnedDataset,
    plane_enabled,
    plane_for,
    row_sample_crc,
    set_plane_enabled,
    warm_plane,
)
from .bundling import BundledBinner, BundleLayout, find_bundles
from .dataset import Dataset, holdout_indices, kfold_indices, stratified_shuffle
from .generators import make_classification, make_regression
from .io import from_csv, load_npz, save_npz, to_csv
from .preprocessing import Imputer, OneHotEncoder, Pipeline, StandardScaler
from .selectivity import (
    MANUAL_CONFIG,
    SELECTIVITY_DATASETS,
    SelectivityWorkload,
    load_selectivity,
    make_table,
    make_workload,
    selectivity_to_dataset,
)
from .suite import SUITE, DatasetSpec, iter_suite, load_dataset, suite_names
from .timeseries import (
    TIMESERIES_REGIMES,
    ForecastModel,
    LagFeaturizer,
    forecast_suite_names,
    load_forecast_dataset,
    make_timeseries,
    seasonal_naive_cv_error,
    seasonal_naive_forecast,
)

__all__ = [
    "BinnedDataset",
    "BundleLayout",
    "BundledBinner",
    "Dataset",
    "DatasetSpec",
    "ForecastModel",
    "find_bundles",
    "Imputer",
    "LagFeaturizer",
    "MANUAL_CONFIG",
    "OneHotEncoder",
    "Pipeline",
    "SELECTIVITY_DATASETS",
    "SUITE",
    "SelectivityWorkload",
    "StandardScaler",
    "TIMESERIES_REGIMES",
    "forecast_suite_names",
    "from_csv",
    "holdout_indices",
    "iter_suite",
    "kfold_indices",
    "load_dataset",
    "load_forecast_dataset",
    "load_npz",
    "load_selectivity",
    "make_classification",
    "make_regression",
    "make_table",
    "make_timeseries",
    "make_workload",
    "plane_enabled",
    "plane_for",
    "row_sample_crc",
    "save_npz",
    "set_plane_enabled",
    "seasonal_naive_cv_error",
    "seasonal_naive_forecast",
    "selectivity_to_dataset",
    "stratified_shuffle",
    "suite_names",
    "to_csv",
    "warm_plane",
]
