"""Synthetic task generators.

These produce the stand-ins for the paper's 53 benchmark datasets
(DESIGN.md §2): parametric classification tasks spanning linear, nonlinear
and interaction structure, plus the classic PMLB regression functions
(friedman, 2dplanes, mv, pol, poker-like) implemented from their published
definitions.  Every generator returns a :class:`~repro.data.dataset.Dataset`
and is fully determined by its seed.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset

__all__ = [
    "make_classification",
    "make_regression",
    "FRIEDMAN1",
    "REGRESSION_STRUCTURES",
    "CLASSIFICATION_STRUCTURES",
]

CLASSIFICATION_STRUCTURES = ("linear", "nonlinear", "xor", "clusters")
REGRESSION_STRUCTURES = (
    "friedman1",
    "friedman2",
    "friedman3",
    "plane",
    "poly",
    "step",
    "multiplicative",
)


def _inject_tabular_noise(
    X: np.ndarray,
    rng: np.random.Generator,
    cat_frac: float,
    missing_frac: float,
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Discretise a fraction of columns to ordinal categoricals and knock
    out a fraction of cells to NaN — matching the benchmark datasets'
    mixed numeric/categorical/missing profile."""
    d = X.shape[1]
    cats: list[int] = []
    if cat_frac > 0:
        n_cat = int(round(cat_frac * d))
        cat_cols = rng.choice(d, size=n_cat, replace=False)
        for j in cat_cols:
            n_levels = int(rng.integers(2, 9))
            qs = np.quantile(X[:, j], np.linspace(0, 1, n_levels + 1)[1:-1])
            X[:, j] = np.digitize(X[:, j], qs).astype(np.float64)
            cats.append(int(j))
    if missing_frac > 0:
        mask = rng.random(X.shape) < missing_frac
        X[mask] = np.nan
    return X, tuple(sorted(cats))


def make_classification(
    n: int,
    d: int,
    n_classes: int = 2,
    structure: str = "nonlinear",
    n_informative: int | None = None,
    class_sep: float = 1.0,
    flip_y: float = 0.02,
    cat_frac: float = 0.0,
    missing_frac: float = 0.0,
    imbalance: float = 0.0,
    seed: int = 0,
    name: str = "synthetic-clf",
) -> Dataset:
    """Generate a tabular classification task.

    ``structure`` controls the decision surface:

    * ``linear`` — a noisy linear score thresholded into classes;
    * ``nonlinear`` — linear + sin/quadratic distortions (default);
    * ``xor`` — parity of informative-feature signs (hard for linear models);
    * ``clusters`` — gaussian mixture with one or more blobs per class.

    ``imbalance`` in [0, 1) skews the class prior toward class 0.
    """
    if structure not in CLASSIFICATION_STRUCTURES:
        raise ValueError(f"unknown structure {structure!r}")
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    rng = np.random.default_rng(seed)
    n_informative = n_informative or max(2, int(0.6 * d))
    n_informative = min(n_informative, d)
    X = rng.standard_normal((n, d))
    Xi = X[:, :n_informative]

    if structure == "clusters":
        # place class centroids on a sphere, scaled by class_sep
        centers = rng.standard_normal((n_classes, n_informative))
        centers *= class_sep * 2.0 / np.linalg.norm(centers, axis=1, keepdims=True)
        y = rng.integers(0, n_classes, n)
        X[:, :n_informative] += centers[y]
    else:
        if structure == "linear":
            score = Xi @ rng.standard_normal(n_informative)
        elif structure == "nonlinear":
            w1 = rng.standard_normal(n_informative)
            w2 = rng.standard_normal(n_informative)
            score = Xi @ w1 + np.sin(2.0 * (Xi @ w2)) + 0.5 * (Xi[:, 0] * Xi[:, 1 % n_informative])
        else:  # xor
            k = min(4, n_informative)
            score = np.prod(np.sign(Xi[:, :k]), axis=1) * (
                1.0 + 0.3 * np.abs(Xi[:, 0])
            )
        score = score + (1.0 / max(class_sep, 1e-6) - 1.0) * rng.standard_normal(n)
        if imbalance > 0 and n_classes == 2:
            thresh = np.quantile(score, 0.5 + imbalance / 2)
            y = (score > thresh).astype(np.int64)
        else:
            cuts = np.quantile(score, np.linspace(0, 1, n_classes + 1)[1:-1])
            y = np.digitize(score, cuts).astype(np.int64)

    if flip_y > 0:
        flip = rng.random(n) < flip_y
        y[flip] = rng.integers(0, n_classes, int(flip.sum()))

    X, cats = _inject_tabular_noise(X, rng, cat_frac, missing_frac)
    task = "binary" if n_classes == 2 else "multiclass"
    return Dataset(name, X, y, task, cats)


# ----------------------------------------------------------------------
def FRIEDMAN1(X: np.ndarray) -> np.ndarray:
    """The Friedman #1 function on uniform[0,1] inputs (needs >= 5 cols)."""
    return (
        10.0 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20.0 * (X[:, 2] - 0.5) ** 2
        + 10.0 * X[:, 3]
        + 5.0 * X[:, 4]
    )


def make_regression(
    n: int,
    d: int,
    structure: str = "friedman1",
    noise: float = 1.0,
    cat_frac: float = 0.0,
    missing_frac: float = 0.0,
    seed: int = 0,
    name: str = "synthetic-reg",
) -> Dataset:
    """Generate a tabular regression task.

    Structures follow the published synthetic benchmarks that PMLB's large
    regression datasets derive from (fried/2dplanes/mv/pol families).
    """
    if structure not in REGRESSION_STRUCTURES:
        raise ValueError(f"unknown structure {structure!r}")
    rng = np.random.default_rng(seed)

    if structure == "friedman1":
        d = max(d, 5)
        X = rng.random((n, d))
        y = FRIEDMAN1(X)
    elif structure == "friedman2":
        d = max(d, 4)
        X = rng.random((n, d))
        x0 = X[:, 0] * 100
        x1 = X[:, 1] * 520 * np.pi + 40 * np.pi
        x2 = X[:, 2]
        x3 = X[:, 3] * 10 + 1
        y = np.sqrt(x0**2 + (x1 * x2 - 1.0 / (x1 * x3)) ** 2) / 100.0
    elif structure == "friedman3":
        d = max(d, 4)
        X = rng.random((n, d))
        x0 = X[:, 0] * 100 + 1e-3
        x1 = X[:, 1] * 520 * np.pi + 40 * np.pi
        x2 = X[:, 2]
        x3 = X[:, 3] * 10 + 1
        y = np.arctan((x1 * x2 - 1.0 / (x1 * x3)) / x0)
    elif structure == "plane":
        # 2dplanes-style: axis-aligned plane selected by a ternary switch
        d = max(d, 10)
        X = rng.choice([-1.0, 0.0, 1.0], size=(n, d))
        sel = X[:, 0] > 0
        y = np.where(
            sel,
            3.0 + 3.0 * X[:, 1] + 2.0 * X[:, 2] + X[:, 3],
            -3.0 + 3.0 * X[:, 4] + 2.0 * X[:, 5] + X[:, 6],
        )
    elif structure == "poly":
        # pol-style smooth polynomial response
        X = rng.standard_normal((n, d))
        w = rng.standard_normal(d)
        z = X @ w / np.sqrt(d)
        y = z**3 - 2.0 * z + 0.5 * z**2
    elif structure == "multiplicative":
        # mv-style mixed interactions
        d = max(d, 6)
        X = rng.standard_normal((n, d))
        y = (
            X[:, 0] * X[:, 1]
            + np.where(X[:, 2] > 0, 2.0 * X[:, 3], -X[:, 4])
            + np.abs(X[:, 5])
        )
    else:  # step
        X = rng.standard_normal((n, d))
        w = rng.standard_normal(d)
        y = np.floor(2.0 * (X @ w) / np.sqrt(d)) * 0.5
    y = y + noise * np.std(y) * 0.1 * rng.standard_normal(n)
    X, cats = _inject_tabular_noise(X, rng, cat_frac, missing_frac)
    return Dataset(name, X, y.astype(np.float64), "regression", cats)
