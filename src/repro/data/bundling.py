"""Exclusive feature bundling (EFB) for sparse one-hot blocks.

One-hot encoding turns one categorical column into ``k`` nearly-empty
columns; a histogram learner then pays ``k`` bincount passes per split
search where one would do.  Bundling merges columns that are *mutually
exclusive* — at most one of them is away from its default code in any
row — into a single coded feature whose bins are the disjoint union of
the members' bins (LightGBM's EFB, restricted to the conflict-free
case so the merge is lossless and invertible).

The merge operates on bin codes, not raw floats: member ``j`` with
code ``c != default_j`` contributes ``offset_j + c``; a row where every
member sits at its default gets code 0.  Because the members' code
ranges are disjoint, :meth:`BundleLayout.split_sources` can translate
any split threshold on the bundled feature back to the original
(column, code-interval) pairs — the "unbundled transparently at split
time" guarantee, exercised by ``tests/data/test_bundling.py``.

Candidate bundles are found greedily on a row sketch and must then be
*verified* conflict-free on the full columns before use (the shared
plane does this in :mod:`repro.data.binned`); a single conflicting row
disqualifies a member, so bundling never changes what a split can
express.
"""

from __future__ import annotations

import numpy as np

from ..learners.histogram import code_dtype

__all__ = ["BundleLayout", "BundledBinner", "find_bundles"]

#: a column is a bundling candidate only if at least this fraction of
#: (sketch) rows sit at its default code — dense columns gain nothing
#: and would conflict with everything
MIN_DEFAULT_FRAC = 0.8

#: never grow a bundle past this many codes (uint16 ceiling, minus the
#: all-default code 0)
MAX_BUNDLE_CODES = 65_534


def find_bundles(
    codes: np.ndarray,
    n_bins: np.ndarray,
    defaults: np.ndarray,
    min_default_frac: float = MIN_DEFAULT_FRAC,
) -> list[list[int]]:
    """Greedy conflict-free packing of sparse columns into bundles.

    ``codes`` is a (rows, d) code matrix (typically a sketch), ``n_bins``
    the per-feature code count, ``defaults`` the per-feature most-common
    code.  Columns are offered densest-first to the first bundle whose
    active-row mask they don't intersect (zero conflicts — strictly
    exclusive).  Returns only bundles with >= 2 members, each sorted by
    column index; deterministic for a given input.
    """
    n, d = codes.shape
    n_bins = np.asarray(n_bins, dtype=np.int64)
    defaults = np.asarray(defaults, dtype=np.int64)
    if n == 0 or d < 2:
        return []
    active_masks = {}
    cand = []
    for j in range(d):
        mask = codes[:, j] != defaults[j]
        frac = float(np.count_nonzero(mask)) / n
        if frac <= 1.0 - float(min_default_frac):
            cand.append(j)
            active_masks[j] = mask
    if len(cand) < 2:
        return []
    cand.sort(key=lambda j: (-int(np.count_nonzero(active_masks[j])), j))
    bundles: list[list[int]] = []
    busy: list[np.ndarray] = []
    sizes: list[int] = []
    for j in cand:
        mask = active_masks[j]
        for i, taken in enumerate(busy):
            if sizes[i] + int(n_bins[j]) > MAX_BUNDLE_CODES:
                continue
            if not np.any(taken & mask):
                bundles[i].append(j)
                busy[i] |= mask
                sizes[i] += int(n_bins[j])
                break
        else:
            bundles.append([j])
            busy.append(mask.copy())
            sizes.append(1 + int(n_bins[j]))
    out = [sorted(b) for b in bundles if len(b) >= 2]
    out.sort(key=lambda b: b[0])
    return out


class BundleLayout:
    """The code-space geometry of a set of bundles over ``d`` features.

    Output features are the unbundled columns in their original order,
    followed by one feature per bundle.  Member ``j`` of a bundle owns
    the disjoint code interval ``[offset_j, offset_j + n_bins_j)``;
    code 0 means every member is at its default.
    """

    def __init__(self, n_bins: np.ndarray, defaults: np.ndarray,
                 bundles: list[list[int]]) -> None:
        n_bins = np.asarray(n_bins, dtype=np.int64)
        self.defaults = np.asarray(defaults, dtype=np.int64)
        self.bundles = [list(map(int, b)) for b in bundles]
        bundled = {j for b in self.bundles for j in b}
        if len(bundled) != sum(len(b) for b in self.bundles):
            raise ValueError("a column appears in more than one bundle")
        self.d_in = int(n_bins.size)
        self.singles = [j for j in range(self.d_in) if j not in bundled]
        self.offsets: list[list[int]] = []
        out_bins = [int(n_bins[j]) for j in self.singles]
        for b in self.bundles:
            offs = []
            off = 1  # code 0 = all members at default
            for j in b:
                offs.append(off)
                off += int(n_bins[j])
            self.offsets.append(offs)
            out_bins.append(off)
        self.n_bins_ = np.asarray(out_bins, dtype=np.int64)

    @property
    def d_out(self) -> int:
        return int(self.n_bins_.size)

    def apply(self, codes: np.ndarray) -> np.ndarray:
        """Merge a (rows, d_in) code matrix into (rows, d_out)."""
        n = codes.shape[0]
        out = np.empty((n, self.d_out),
                       dtype=code_dtype(int(self.n_bins_.max())))
        for k, j in enumerate(self.singles):
            out[:, k] = codes[:, j]
        base = len(self.singles)
        for k, (b, offs) in enumerate(zip(self.bundles, self.offsets)):
            col = np.zeros(n, dtype=np.int64)
            for j, off in zip(b, offs):
                c = codes[:, j].astype(np.int64)
                hot = c != self.defaults[j]
                col[hot] = c[hot] + off
            out[:, base + k] = col
        return out

    # -- transparency ---------------------------------------------------
    def source_of(self, out_feature: int) -> list[int]:
        """Original column indices behind output feature ``out_feature``."""
        k = int(out_feature)
        if k < len(self.singles):
            return [self.singles[k]]
        return list(self.bundles[k - len(self.singles)])

    def member_interval(self, out_feature: int, j: int) -> tuple[int, int]:
        """Half-open bundled-code interval owned by original column ``j``
        inside bundled output feature ``out_feature``."""
        k = int(out_feature) - len(self.singles)
        b, offs = self.bundles[k], self.offsets[k]
        i = b.index(int(j))
        lo = offs[i]
        hi = offs[i + 1] if i + 1 < len(offs) else int(self.n_bins_[len(self.singles) + k])
        return lo, hi

    def split_sources(self, out_feature: int,
                      threshold: int) -> list[tuple[int, int, int]]:
        """Unbundle a ``code <= threshold`` split on a bundled feature.

        Returns ``(original column, lo, hi)`` triples: the member codes
        in ``[lo, hi)`` travel left with the split.  The all-default
        code 0 always travels left (thresholds are non-negative), which
        is exactly the missing-goes-left convention of the unbundled
        grid.  A single (non-bundled) output feature maps to itself.
        """
        k = int(out_feature)
        if k < len(self.singles):
            return [(self.singles[k], 0, int(threshold) + 1)]
        out = []
        for j in self.source_of(k):
            lo, hi = self.member_interval(k, j)
            cut = min(hi, int(threshold) + 1)
            if cut > lo:
                # member codes c with lo <= offset+c <= threshold
                off = lo  # interval start == member offset
                out.append((j, 0, cut - off))
        return out

    def unbundle_counts(self, per_feature: np.ndarray) -> np.ndarray:
        """Spread per-output-feature totals (e.g. split counts or
        importances) back over the ``d_in`` original columns; a bundle's
        total is divided evenly among its members."""
        per_feature = np.asarray(per_feature, dtype=np.float64)
        out = np.zeros(self.d_in, dtype=np.float64)
        for k, j in enumerate(self.singles):
            out[j] = per_feature[k]
        base = len(self.singles)
        for k, b in enumerate(self.bundles):
            out[list(b)] = per_feature[base + k] / len(b)
        return out


class BundledBinner:
    """A fitted binner view whose output features are bundled.

    Wraps an inner fitted binner (the sketch base grid or a
    :class:`~repro.learners.histogram.DerivedBinner`) plus a
    :class:`BundleLayout` in the inner binner's code space.  Exposes the
    surface histogram learners use — ``n_bins_``, ``bin_edges_`` (real
    edges for unbundled columns, empty placeholders for bundles),
    ``transform`` and ``total_bins`` — so it drops into the
    ``(codes, n_bins, binner)`` triple the binned plane serves.

    Not serialisable by :mod:`repro.learners.model_io` — it only ever
    lives inside trial evaluation (final deployment models are refit on
    raw data with a plain in-learner binner).
    """

    def __init__(self, inner, layout: BundleLayout) -> None:
        self.inner = inner
        self.layout = layout
        self.max_bins = int(getattr(inner, "max_bins", 0))
        self.n_bins_ = layout.n_bins_
        edges = []
        for k in range(layout.d_out):
            src = layout.source_of(k)
            edges.append(inner.bin_edges_[src[0]] if len(src) == 1
                         else np.empty(0))
        self.bin_edges_ = edges

    def transform(self, X: np.ndarray) -> np.ndarray:
        return self.layout.apply(self.inner.transform(X))

    def codes_from_base(self, base_codes: np.ndarray) -> np.ndarray:
        return self.layout.apply(self.inner.codes_from_base(base_codes))

    @property
    def total_bins(self) -> int:
        return int(self.n_bins_.max())
