"""Dataset container and resampling utilities.

Implements exactly the data handling FLAML's controller needs (§4.2):

* random shuffling up front, **stratified for classification**, so that a
  sample of size ``s`` is just the first ``s`` rows of the shuffled data;
* k-fold cross-validation and holdout splitting;
* 10-fold outer splits to mimic the benchmark's OpenML task folds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset", "stratified_shuffle", "kfold_indices", "holdout_indices"]

#: "forecast" rows are an ordered univariate series (y) plus optional
#: exogenous columns (X); such datasets must never be shuffled
TASKS = ("binary", "multiclass", "regression", "forecast")


def stratified_shuffle(y: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Permutation that interleaves classes evenly along the prefix.

    Round-robins over per-class shuffled queues so every prefix of the
    result has approximately the full-data class mix — this is what makes
    FLAML's "take the first s rows" sampling valid for classification.
    """
    y = np.asarray(y)
    order = rng.permutation(y.size)
    # Stable-sort the shuffled indices by class so each class forms a
    # contiguous shuffled queue, then interleave the queues proportionally:
    # the j-th element of a class of size c gets sort key (j + u)/c with a
    # shared random phase u, which deals classes out evenly along the prefix.
    by_class = order[np.argsort(y[order], kind="mergesort")]
    _, counts = np.unique(y, return_counts=True)
    within = np.concatenate([np.arange(c, dtype=np.float64) for c in counts])
    size = np.repeat(counts.astype(np.float64), counts)
    keys = (within + rng.random(y.size)) / size
    return by_class[np.argsort(keys, kind="mergesort")]


def kfold_indices(
    n: int, k: int, y: np.ndarray | None = None, rng: np.random.Generator | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """k-fold split indices; stratified when ``y`` is given."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if k > n:
        raise ValueError(f"cannot make {k} folds from {n} rows")
    rng = rng or np.random.default_rng(0)
    if y is not None:
        order = stratified_shuffle(y, rng)
    else:
        order = rng.permutation(n)
    folds = [order[i::k] for i in range(k)]
    out = []
    for i in range(k):
        val = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, val))
    return out


def holdout_indices(
    n: int, ratio: float, y: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(train, val) indices with ``ratio`` of rows held out; stratified if y."""
    if not 0 < ratio < 1:
        raise ValueError(f"holdout ratio must be in (0,1), got {ratio}")
    rng = rng or np.random.default_rng(0)
    order = stratified_shuffle(y, rng) if y is not None else rng.permutation(n)
    n_val = max(1, int(round(ratio * n)))
    return order[n_val:], order[:n_val]


@dataclass
class Dataset:
    """A named supervised-learning task.

    ``X`` may contain NaNs (missing values) and ordinal-encoded categorical
    columns (listed in ``categorical``); all learners consume this format
    directly through the binner.
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    task: str
    categorical: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y)
        if self.task not in TASKS:
            raise ValueError(f"task must be one of {TASKS}, got {self.task!r}")
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got {self.X.shape}")
        if self.y.shape[0] != self.X.shape[0]:
            raise ValueError("X and y row counts differ")

    def __getstate__(self) -> dict:
        # the per-process binned-data plane (attached by
        # repro.data.binned.plane_for) holds locks and caches; it must
        # never travel in a pickle — workers rebuild their own
        state = dict(self.__dict__)
        state.pop("_binned_plane", None)
        return state

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows (instances)."""
        return int(self.X.shape[0])

    @property
    def d(self) -> int:
        """Number of feature columns."""
        return int(self.X.shape[1])

    @property
    def is_classification(self) -> bool:
        """True for binary/multiclass tasks."""
        return self.task in ("binary", "multiclass")

    @property
    def n_classes(self) -> int:
        """Distinct label count (0 for regression)."""
        return int(np.unique(self.y).size) if self.is_classification else 0

    # ------------------------------------------------------------------
    def shuffled(self, seed: int = 0) -> "Dataset":
        """Stratified (classification) or plain random shuffle of the rows."""
        rng = np.random.default_rng(seed)
        order = (
            stratified_shuffle(self.y, rng)
            if self.is_classification
            else rng.permutation(self.n)
        )
        return Dataset(self.name, self.X[order], self.y[order], self.task,
                       self.categorical)

    def head(self, s: int) -> "Dataset":
        """First ``s`` rows (the paper's subsample-of-shuffled-data)."""
        s = min(int(s), self.n)
        return Dataset(self.name, self.X[:s], self.y[:s], self.task,
                       self.categorical)

    def subset(self, idx: np.ndarray) -> "Dataset":
        """Rows selected by an index array, as a new Dataset."""
        return Dataset(self.name, self.X[idx], self.y[idx], self.task,
                       self.categorical)

    def outer_folds(
        self, n_folds: int = 10, seed: int = 42
    ) -> list[tuple["Dataset", "Dataset"]]:
        """Benchmark-style outer (train, test) splits, stratified for
        classification — the stand-in for OpenML's fixed 10 folds."""
        rng = np.random.default_rng(seed)
        y = self.y if self.is_classification else None
        return [
            (self.subset(tr), self.subset(te))
            for tr, te in kfold_indices(self.n, n_folds, y=y, rng=rng)
        ]

    def describe(self) -> dict:
        """Summary statistics (what ``python -m repro datasets --describe``
        prints): shape, task, class balance, missingness, categoricals."""
        out = {
            "name": self.name,
            "task": self.task,
            "n": self.n,
            "d": self.d,
            "n_categorical": len(self.categorical),
            "missing_frac": float(np.isnan(self.X).mean()),
        }
        if self.is_classification:
            counts = np.unique(self.y, return_counts=True)[1]
            out["n_classes"] = int(counts.size)
            out["minority_frac"] = float(counts.min() / counts.sum())
        else:
            y = self.y.astype(np.float64)
            out["y_mean"] = float(y.mean())
            out["y_std"] = float(y.std())
        return out
