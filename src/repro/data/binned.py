"""Shared binned-data plane: bin once per dataset, reuse everywhere.

The paper's premise is that AutoML cost is dominated by trial
wall-clock, yet without this module most of a small trial is *redundant*
work repeated hundreds of times per search:

* every histogram learner re-runs quantile binning over its training
  slice inside ``fit`` — per fold, per trial;
* every trial re-computes the same stratified holdout/k-fold indices
  from scratch (several ``argsort`` passes over the labels);
* the process backend pickles the full dataset into every worker.

:class:`BinnedDataset` is the fix for the first two (the third lives in
:mod:`repro.exec.process`): one plane per dataset memoizes split
indices per ``(kind, n, k/ratio, seed)`` and bin codes per
``(row-subset, max_bins)``.  Learners receive
:class:`~repro.learners.histogram.BinnedMatrix` views and skip their
internal ``Binner.fit_transform`` entirely.  Because the memoized binner
is fit on *exactly* the rows the learner would have used (and the
``Binner`` draws nothing from its RNG below its subsample threshold),
trial results are bit-for-bit identical to the unshared path — asserted
by ``tests/core/test_binned_equivalence.py`` against pre-refactor
goldens.

The sample-size schedule composes with the cache for free: under
holdout, a sample of size ``s`` is a *prefix* of the fixed shuffled
training order, so its rows key is just ``("ho-tr", ratio, seed, s)``
and the geometric schedule (s, 2s, 4s, ...) touches only ``O(log n)``
distinct entries per ``max_bins``.

``REPRO_BINNED_PLANE=0`` (or :func:`set_plane_enabled`) disables the
plane globally — ``benchmarks/bench_hotpath.py`` uses the toggle to
measure the before/after trials-per-second honestly in one process.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict

import numpy as np

from ..learners.histogram import Binner, BinnedMatrix
from ..obs.metrics import REGISTRY
from ..obs.trace import trace_span
from .dataset import Dataset, holdout_indices, kfold_indices

__all__ = [
    "BinnedDataset",
    "plane_for",
    "plane_enabled",
    "row_sample_crc",
    "set_plane_enabled",
    "warm_plane",
]

_ENV_FLAG = "REPRO_BINNED_PLANE"
_enabled = os.environ.get(_ENV_FLAG, "1").lower() not in ("0", "false", "off")
_flag_lock = threading.Lock()

# plane cache traffic, aggregated across every plane instance in the
# process (series objects bound once at import; inc() is lock+add)
_HELP_SPLIT = "Binned-plane split-index lookups, by cache result."
_HELP_CODES = "Binned-plane bin-code/transform lookups, by cache result."
_m_split_hit = REGISTRY.counter("repro_plane_split_total", _HELP_SPLIT,
                                result="hit")
_m_split_miss = REGISTRY.counter("repro_plane_split_total", _HELP_SPLIT,
                                 result="miss")
_m_codes_hit = REGISTRY.counter("repro_plane_codes_total", _HELP_CODES,
                                result="hit")
_m_codes_miss = REGISTRY.counter("repro_plane_codes_total", _HELP_CODES,
                                 result="miss")


def plane_enabled() -> bool:
    """Whether the trial path routes through the shared binned plane."""
    return _enabled


def set_plane_enabled(on: bool) -> bool:
    """Globally enable/disable the plane; returns the previous setting."""
    global _enabled
    with _flag_lock:
        prev, _enabled = _enabled, bool(on)
    return prev


def row_sample_crc(data: Dataset) -> int:
    """CRC32 of a first-64-row sample of ``X`` and ``y``.

    The shared cheap content probe: :func:`plane_for` revalidates it per
    lookup (in-place rescale/impute/relabel evicts the stale plane
    instead of silently serving old codes and splits), and
    :func:`repro.exec.engine.dataset_token` folds it into trial-cache
    keys.  Object-dtype labels have no stable buffer and are skipped.
    A mutation that leaves the first rows byte-identical escapes the
    probe — datasets handed to a search are treated as immutable (the
    plane marks everything it returns read-only for the same reason).
    """
    crc = zlib.crc32(np.ascontiguousarray(data.X[:64]))
    y = np.ascontiguousarray(data.y[:64])
    if not y.dtype.hasobject:
        crc = zlib.crc32(y, crc)
    return crc


def _quick_content_token(data: Dataset) -> tuple:
    """Shape + row-sample CRC, the plane staleness probe."""
    return (data.n, data.d, row_sample_crc(data))


class _LRU:
    """Tiny bounded mapping (not thread-safe; callers hold the lock).

    Bounded by entry count and, when ``max_bytes`` is given, by the
    summed ``nbytes`` reported at ``put`` time — entry counts alone
    would let a wide/tall dataset pin hundreds of MB of bin codes.
    """

    def __init__(self, maxsize: int, max_bytes: int | None = None) -> None:
        self.maxsize = int(maxsize)
        self.max_bytes = max_bytes
        self._d: OrderedDict = OrderedDict()
        self._sizes: dict = {}
        self.nbytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._d[key]
        except KeyError:
            self.misses += 1
            return None
        self._d.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value, nbytes: int = 0) -> None:
        if key in self._d:
            self.nbytes -= self._sizes.pop(key, 0)
        self._d[key] = value
        self._d.move_to_end(key)
        if self.max_bytes is not None:
            self._sizes[key] = int(nbytes)
            self.nbytes += int(nbytes)
        while len(self._d) > self.maxsize or (
            self.max_bytes is not None
            and self.nbytes > self.max_bytes
            and len(self._d) > 1
        ):
            old, _ = self._d.popitem(last=False)
            self.nbytes -= self._sizes.pop(old, 0)

    def __len__(self) -> int:
        return len(self._d)


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class BinnedDataset:
    """Per-dataset cache of split indices, fitted binners, and bin codes.

    One instance serves a whole search (and, on the process backend, a
    whole worker): every executor that evaluates trials against the same
    :class:`Dataset` object shares one plane via :func:`plane_for`.

    All returned arrays are marked read-only — they are shared across
    trials (and across threads on the thread backend), so accidental
    in-place mutation by a learner must fail loudly rather than corrupt
    every later trial.
    """

    #: above this row count ``Binner.fit`` subsamples via its RNG, which
    #: the legacy in-learner path seeds from the trial — pre-binning
    #: would then no longer be bit-for-bit equivalent, so the plane
    #: serves raw slices instead (splits stay memoized either way)
    EXACT_ROW_LIMIT = 200_000

    #: byte budgets for the code caches (codes are uint8/uint16, so the
    #: defaults hold hundreds of fold x max_bins combinations for suite
    #: data while capping wide/tall datasets at a sane footprint)
    BINNED_CACHE_BYTES = 192 << 20
    TRANSFORM_CACHE_BYTES = 64 << 20

    def __init__(self, data: Dataset, max_binned: int = 64,
                 max_transforms: int = 192, max_splits: int = 64) -> None:
        self.data = data
        self._lock = threading.Lock()
        self._splits = _LRU(max_splits)
        # (rows_key, max_bins) -> (codes, n_bins, binner)
        self._binned = _LRU(max_binned, max_bytes=self.BINNED_CACHE_BYTES)
        # (binner token, rows_key) -> codes
        self._transforms = _LRU(max_transforms,
                                max_bytes=self.TRANSFORM_CACHE_BYTES)
        self._content_token = _quick_content_token(data)

    # ------------------------------------------------------------------
    @property
    def exact(self) -> bool:
        """Whether pre-binning here is bit-for-bit equal to in-learner
        binning (see :attr:`EXACT_ROW_LIMIT`)."""
        return self.data.n <= self.EXACT_ROW_LIMIT

    def stats(self) -> dict:
        """Cache occupancy/hit counters (observability + tests)."""
        with self._lock:
            return {
                "splits": len(self._splits),
                "binned": len(self._binned),
                "transforms": len(self._transforms),
                "split_hits": self._splits.hits,
                "binned_hits": self._binned.hits,
                "transform_hits": self._transforms.hits,
            }

    # -- split memoization ---------------------------------------------
    def holdout_split(self, ratio: float, seed: int):
        """Memoized stratified holdout indices, exactly as
        ``evaluate_config`` computed them per-trial: a fresh
        ``default_rng(seed)`` over the full data."""
        key = ("holdout", float(ratio), int(seed))
        with self._lock:
            cached = self._splits.get(key)
        if cached is not None:
            _m_split_hit.inc()
            return cached
        _m_split_miss.inc()
        with trace_span("plane.split", kind="holdout"):
            y = self.data.y if self.data.is_classification else None
            tr, va = holdout_indices(
                self.data.n, ratio, y=y, rng=np.random.default_rng(seed)
            )
            value = (_readonly(tr), _readonly(va))
        with self._lock:
            self._splits.put(key, value)
        return value

    def kfold_split(self, n_sub: int, k: int, seed: int):
        """Memoized stratified k-fold indices over the first ``n_sub``
        rows (the paper's subsample-of-shuffled-data prefix)."""
        key = ("cv", int(n_sub), int(k), int(seed))
        with self._lock:
            cached = self._splits.get(key)
        if cached is not None:
            _m_split_hit.inc()
            return cached
        _m_split_miss.inc()
        with trace_span("plane.split", kind="cv"):
            y = self.data.y[:n_sub] if self.data.is_classification else None
            folds = [
                (_readonly(tr), _readonly(va))
                for tr, va in kfold_indices(
                    n_sub, k, y=y, rng=np.random.default_rng(seed)
                )
            ]
        with self._lock:
            self._splits.put(key, folds)
        return folds

    # -- binned codes ---------------------------------------------------
    def view(self, rows: np.ndarray, rows_key: tuple) -> BinnedMatrix:
        """A :class:`BinnedMatrix` over ``rows``; ``rows_key`` must
        uniquely describe the row subset (it is the memoization key)."""
        return BinnedMatrix(self, rows, rows_key)

    def binned_for(self, rows: np.ndarray, rows_key: tuple, max_bins: int):
        """(codes, n_bins, binner) with the binner fit on ``rows``.

        Mirrors the in-learner path byte for byte: ``Binner(max_bins)``
        fit and applied to ``X[rows]``.  The fitted binner carries a
        ``plane_token`` so validation-side transforms can memoize
        against it.
        """
        key = (rows_key, int(max_bins))
        with self._lock:
            cached = self._binned.get(key)
        if cached is not None:
            _m_codes_hit.inc()
            return cached
        _m_codes_miss.inc()
        with trace_span("plane.codes", max_bins=int(max_bins)):
            sub = self.data.X[rows]
            binner = Binner(max_bins=int(max_bins)).fit(sub)
            binner.plane_token = key
            codes = _readonly(binner.transform(sub))
            value = (codes, binner.n_bins_, binner)
        with self._lock:
            self._binned.put(key, value, nbytes=codes.nbytes)
        return value

    def transform_with(self, binner: Binner, rows: np.ndarray,
                       rows_key: tuple) -> np.ndarray:
        """``binner.transform(X[rows])``, memoized per (binner, rows).

        A binner without a ``plane_token`` (fit outside the plane) is
        applied directly — correctness never depends on the cache.
        """
        token = getattr(binner, "plane_token", None)
        if token is None:
            return binner.transform(self.data.X[rows])
        key = (token, rows_key)
        with self._lock:
            cached = self._transforms.get(key)
        if cached is not None:
            _m_codes_hit.inc()
            return cached
        _m_codes_miss.inc()
        with trace_span("plane.transform"):
            codes = _readonly(binner.transform(self.data.X[rows]))
        with self._lock:
            self._transforms.put(key, codes, nbytes=codes.nbytes)
        return codes


# ----------------------------------------------------------------------
#: fallback ``max_bins`` set for plane warmup when the learner registry
#: cannot be inspected (LGBM/XGB 255, CatBoost-like 128, forests 64)
_WARM_MAX_BINS = (255, 128, 64)

_warm_bins_cache: tuple | None = None


def _default_warm_bins() -> tuple:
    """The ``max_bins`` values a first trial actually asks the plane for,
    derived from the registered plane-aware learners' own defaults
    (``max_bin`` constructor default, or the ``_plane_max_bins`` class
    attribute for learners that bin at a fixed width) — so warmup tracks
    the learners instead of a hardcoded copy of their defaults."""
    global _warm_bins_cache
    if _warm_bins_cache is not None:
        return _warm_bins_cache
    import inspect

    from ..core.registry import all_learners  # lazy: avoids import cycle

    bins = set()
    for spec in all_learners().values():
        for cls in (spec.classifier_cls, spec.regressor_cls):
            if cls is None or not getattr(cls, "_uses_binned_plane", False):
                continue
            fixed = getattr(cls, "_plane_max_bins", None)
            if fixed is not None:
                bins.add(int(fixed))
                continue
            try:
                default = inspect.signature(cls).parameters["max_bin"].default
                bins.add(int(default))
            except (KeyError, TypeError, ValueError):
                pass
    _warm_bins_cache = tuple(sorted(bins, reverse=True)) or _WARM_MAX_BINS
    return _warm_bins_cache


def warm_plane(
    data: Dataset,
    *,
    resampling: str = "holdout",
    holdout_ratio: float = 0.1,
    seed: int = 0,
    n_splits: int = 5,
    sample_size: int | None = None,
    max_bins: tuple | None = None,
):
    """Pre-populate the plane caches a search's first trial will hit.

    Process workers call this from their initializer
    (:func:`repro.exec.process._init_worker`) so the first trial per
    worker pays no cold-cache cost: the split indices for the search's
    (resampling, ratio/k, seed), the training-prefix bin codes at the
    default ``max_bins`` of each histogram learner family, and the
    matching validation-side transforms are computed up front.  Keys are
    built exactly as :func:`repro.core.evaluate._plane_error` builds
    them — a warmed entry *is* the entry a trial looks up.

    ``sample_size`` mirrors the controller's initial sample size (the
    fidelity the first trials run at); ``None`` warms the full training
    slice.  No-op (returns None) when the plane is disabled; split
    warming still happens for datasets too large for exact pre-binning.
    """
    if not plane_enabled():
        return None
    if max_bins is None:
        max_bins = _default_warm_bins()
    plane = plane_for(data)
    if resampling == "holdout":
        tr, va = plane.holdout_split(holdout_ratio, seed)
        s = tr.size if sample_size is None else min(int(sample_size), tr.size)
        if plane.exact:
            tr_key = ("ho-tr", float(holdout_ratio), int(seed), int(s))
            va_key = ("ho-va", float(holdout_ratio), int(seed))
            for mb in max_bins:
                _, _, binner = plane.binned_for(tr[:s], tr_key, mb)
                plane.transform_with(binner, va, va_key)
    elif resampling == "cv":
        n_sub = (
            data.n if sample_size is None else min(int(sample_size), data.n)
        )
        k = min(int(n_splits), n_sub)
        folds = plane.kfold_split(n_sub, k, seed)
        if plane.exact:
            for i, (tr, va) in enumerate(folds):
                for mb in max_bins:
                    _, _, binner = plane.binned_for(
                        tr, ("cv-tr", n_sub, k, int(seed), i), mb
                    )
                    plane.transform_with(
                        binner, va, ("cv-va", n_sub, k, int(seed), i)
                    )
    return plane


_plane_attach_lock = threading.Lock()


def plane_for(data: Dataset) -> BinnedDataset:
    """The shared plane for ``data``, cached on the dataset object.

    Storing the plane as an attribute of the :class:`Dataset` ties its
    lifetime (and the up-to-hundreds-of-MB of cached codes it may hold)
    exactly to the data: when the caller drops the dataset, the plane
    goes with it — no module-global registry pinning old datasets
    alive.  A row-sample CRC is revalidated per lookup so in-place
    mutation of the arrays rebuilds the plane rather than serving stale
    codes and splits.
    """
    token = _quick_content_token(data)
    plane = getattr(data, "_binned_plane", None)
    if (
        plane is not None
        and plane.data is data
        and plane._content_token == token
    ):
        return plane
    with _plane_attach_lock:
        plane = getattr(data, "_binned_plane", None)
        if (
            plane is not None
            and plane.data is data
            and plane._content_token == token
        ):
            return plane
        plane = BinnedDataset(data)
        try:
            data._binned_plane = plane
        except (AttributeError, TypeError):  # frozen/slotted container:
            pass  # fall back to an uncached per-call plane
    return plane
