"""Shared binned-data plane: bin once per dataset, reuse everywhere.

The paper's premise is that AutoML cost is dominated by trial
wall-clock, yet without this module most of a small trial is *redundant*
work repeated hundreds of times per search:

* every histogram learner re-runs quantile binning over its training
  slice inside ``fit`` — per fold, per trial;
* every trial re-computes the same stratified holdout/k-fold indices
  from scratch (several ``argsort`` passes over the labels);
* the process backend pickles the full dataset into every worker.

:class:`BinnedDataset` is the fix for the first two (the third lives in
:mod:`repro.exec.process`): one plane per dataset memoizes split
indices per ``(kind, n, k/ratio, seed)`` and bin codes per
``(row-subset, max_bins)``.  Learners receive
:class:`~repro.learners.histogram.BinnedMatrix` views and skip their
internal ``Binner.fit_transform`` entirely.  Because the memoized binner
is fit on *exactly* the rows the learner would have used (and the
``Binner`` draws nothing from its RNG below its subsample threshold),
trial results are bit-for-bit identical to the unshared path — asserted
by ``tests/core/test_binned_equivalence.py`` against pre-refactor
goldens.

The sample-size schedule composes with the cache for free: under
holdout, a sample of size ``s`` is a *prefix* of the fixed shuffled
training order, so its rows key is just ``("ho-tr", ratio, seed, s)``
and the geometric schedule (s, 2s, 4s, ...) touches only ``O(log n)``
distinct entries per ``max_bins``.

``REPRO_BINNED_PLANE=0`` (or :func:`set_plane_enabled`) disables the
plane globally — ``benchmarks/bench_hotpath.py`` uses the toggle to
measure the before/after trials-per-second honestly in one process.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict

import numpy as np

from ..learners.histogram import (
    Binner,
    BinnedMatrix,
    DerivedBinner,
    SketchBinner,
    code_dtype,
)
from ..obs.metrics import REGISTRY
from ..obs.trace import trace_span
from .bundling import BundledBinner, BundleLayout, find_bundles
from .dataset import Dataset, holdout_indices, kfold_indices

__all__ = [
    "BinnedDataset",
    "plane_for",
    "plane_enabled",
    "row_sample_crc",
    "set_plane_enabled",
    "warm_plane",
]

_ENV_FLAG = "REPRO_BINNED_PLANE"
_enabled = os.environ.get(_ENV_FLAG, "1").lower() not in ("0", "false", "off")
_flag_lock = threading.Lock()

# plane cache traffic, aggregated across every plane instance in the
# process (series objects bound once at import; inc() is lock+add)
_HELP_SPLIT = "Binned-plane split-index lookups, by cache result."
_HELP_CODES = "Binned-plane bin-code/transform lookups, by cache result."
_m_split_hit = REGISTRY.counter("repro_plane_split_total", _HELP_SPLIT,
                                result="hit")
_m_split_miss = REGISTRY.counter("repro_plane_split_total", _HELP_SPLIT,
                                 result="miss")
_m_codes_hit = REGISTRY.counter("repro_plane_codes_total", _HELP_CODES,
                                result="hit")
_m_codes_miss = REGISTRY.counter("repro_plane_codes_total", _HELP_CODES,
                                 result="miss")
#: rows actually pushed through the sketch base binner — the proof
#: counter that the sample-size schedule touches only the rows it bins
#: (a geometric schedule increments this by O(s), not O(n), per step)
_m_base_rows = REGISTRY.counter(
    "repro_plane_base_rows_binned_total",
    "Rows quantised by the sketch base binner (work actually done).",
)


def plane_enabled() -> bool:
    """Whether the trial path routes through the shared binned plane."""
    return _enabled


def set_plane_enabled(on: bool) -> bool:
    """Globally enable/disable the plane; returns the previous setting."""
    global _enabled
    with _flag_lock:
        prev, _enabled = _enabled, bool(on)
    return prev


def _sketch_enabled() -> bool:
    """Whether large datasets use the sketch grid (``REPRO_SKETCH_BINNING``,
    default on).  Off, the plane serves raw float slices above the exact
    limit, as it did before the sketch path existed."""
    return os.environ.get("REPRO_SKETCH_BINNING", "1").lower() not in (
        "0", "false", "off")


def _bundling_enabled() -> bool:
    """Whether the sketch grid bundles exclusive sparse columns
    (``REPRO_FEATURE_BUNDLING``, default on)."""
    return os.environ.get("REPRO_FEATURE_BUNDLING", "1").lower() not in (
        "0", "false", "off")


def row_sample_crc(data: Dataset) -> int:
    """CRC32 of a first-64-row sample of ``X`` and ``y``.

    The shared cheap content probe: :func:`plane_for` revalidates it per
    lookup (in-place rescale/impute/relabel evicts the stale plane
    instead of silently serving old codes and splits), and
    :func:`repro.exec.engine.dataset_token` folds it into trial-cache
    keys.  Object-dtype labels have no stable buffer and are skipped.
    A mutation that leaves the first rows byte-identical escapes the
    probe — datasets handed to a search are treated as immutable (the
    plane marks everything it returns read-only for the same reason).
    """
    crc = zlib.crc32(np.ascontiguousarray(data.X[:64]))
    y = np.ascontiguousarray(data.y[:64])
    if not y.dtype.hasobject:
        crc = zlib.crc32(y, crc)
    return crc


def _quick_content_token(data: Dataset) -> tuple:
    """Shape + row-sample CRC, the plane staleness probe."""
    return (data.n, data.d, row_sample_crc(data))


class _LRU:
    """Tiny bounded mapping (not thread-safe; callers hold the lock).

    Bounded by entry count and, when ``max_bytes`` is given, by the
    summed ``nbytes`` reported at ``put`` time — entry counts alone
    would let a wide/tall dataset pin hundreds of MB of bin codes.
    """

    def __init__(self, maxsize: int, max_bytes: int | None = None) -> None:
        self.maxsize = int(maxsize)
        self.max_bytes = max_bytes
        self._d: OrderedDict = OrderedDict()
        self._sizes: dict = {}
        self.nbytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._d[key]
        except KeyError:
            self.misses += 1
            return None
        self._d.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value, nbytes: int = 0) -> None:
        if key in self._d:
            self.nbytes -= self._sizes.pop(key, 0)
        self._d[key] = value
        self._d.move_to_end(key)
        if self.max_bytes is not None:
            self._sizes[key] = int(nbytes)
            self.nbytes += int(nbytes)
        while len(self._d) > self.maxsize or (
            self.max_bytes is not None
            and self.nbytes > self.max_bytes
            and len(self._d) > 1
        ):
            old, _ = self._d.popitem(last=False)
            self.nbytes -= self._sizes.pop(old, 0)

    def __len__(self) -> int:
        return len(self._d)


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class _PrefixCodes:
    """A lazily-filled code buffer along a fixed row permutation.

    The controller's sample-size schedule asks for geometrically growing
    *prefixes* of one shuffled training order; this buffer materialises
    codes for exactly the rows each request adds (``[filled:s]``) and
    serves read-only views, so a search that never leaves small budgets
    never pays for (or allocates pages of) the full matrix — the buffer
    is ``np.empty``, untouched tail pages stay virtual.
    """

    def __init__(self, plane: "BinnedDataset", order: np.ndarray,
                 binner) -> None:
        self._plane = plane
        self._order = order
        self._binner = binner
        self._buf: np.ndarray | None = None
        self._filled = 0
        self._fill_lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        """Bytes of *filled* rows (what the schedule actually touched)."""
        if self._buf is None:
            return 0
        return self._filled * self._buf.shape[1] * self._buf.itemsize

    def codes(self, s: int) -> np.ndarray:
        s = int(s)
        with self._fill_lock:
            if self._buf is None:
                d_out = int(len(self._binner.n_bins_))
                dtype = code_dtype(int(np.max(self._binner.n_bins_)))
                self._buf = np.empty((self._order.size, d_out), dtype=dtype)
            if s > self._filled:
                new_rows = self._order[self._filled:s]
                self._buf[self._filled:s] = self._binner.codes_from_base(
                    self._plane._base_codes_rows(new_rows)
                )
                self._filled = s
            view = self._buf[:s]
        view.flags.writeable = False
        return view


class BinnedDataset:
    """Per-dataset cache of split indices, fitted binners, and bin codes.

    One instance serves a whole search (and, on the process backend, a
    whole worker): every executor that evaluates trials against the same
    :class:`Dataset` object shares one plane via :func:`plane_for`.

    All returned arrays are marked read-only — they are shared across
    trials (and across threads on the thread backend), so accidental
    in-place mutation by a learner must fail loudly rather than corrupt
    every later trial.
    """

    #: up to this row count the plane pre-bins *exactly* as the legacy
    #: in-learner path would (a fresh ``Binner`` per (rows, max_bins)),
    #: so trial errors are bit-for-bit frozen against the goldens.
    #: Above it, per-fold refits are the scaling bottleneck and the
    #: plane switches to the dataset-level sketch grid below — an
    #: intended semantic change at scale (errors stay statistically
    #: equivalent, not bitwise)
    EXACT_ROW_LIMIT = 50_000

    #: the dataset-level sketch grid: one seeded :class:`SketchBinner`
    #: at SKETCH_BASE_BINS (255 value bins + missing -> uint8 codes)
    #: fit on a SKETCH_SIZE-row sketch; every searched ``max_bin`` is
    #: derived from it by equi-depth regrouping, so codes for any row
    #: subset are a gather — fold-independent and shippable over shm
    SKETCH_BASE_BINS = 255
    SKETCH_SIZE = 131_072
    SKETCH_SEED = 0

    #: byte budgets for the code caches (codes are uint8/uint16, so the
    #: defaults hold hundreds of fold x max_bins combinations for suite
    #: data while capping wide/tall datasets at a sane footprint)
    BINNED_CACHE_BYTES = 192 << 20
    TRANSFORM_CACHE_BYTES = 64 << 20

    #: bound on live prefix code buffers (one per (split, max_bins))
    MAX_PREFIX_BUFFERS = 8

    def __init__(self, data: Dataset, max_binned: int = 64,
                 max_transforms: int = 192, max_splits: int = 64) -> None:
        self.data = data
        self._lock = threading.Lock()
        self._splits = _LRU(max_splits)
        # (rows_key, max_bins) -> (codes, n_bins, binner)
        self._binned = _LRU(max_binned, max_bytes=self.BINNED_CACHE_BYTES)
        # (binner token, rows_key) -> codes
        self._transforms = _LRU(max_transforms,
                                max_bytes=self.TRANSFORM_CACHE_BYTES)
        self._content_token = _quick_content_token(data)
        # sketch-path state: built lazily by _ensure_sketch (parent) or
        # injected by adopt_global_codes (shm worker)
        self._sketch_lock = threading.Lock()
        self._sketch_state: dict | None = None
        self._force_sketch = False
        self._global_binners: dict[int, object] = {}
        # (prefix base key, effective max_bins) -> _PrefixCodes
        self._prefix: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def exact(self) -> bool:
        """Whether pre-binning here is bit-for-bit equal to in-learner
        binning (see :attr:`EXACT_ROW_LIMIT`)."""
        if self._force_sketch:
            return False
        return self.data.n <= self.EXACT_ROW_LIMIT

    @property
    def sketch(self) -> bool:
        """Whether this plane serves dataset-level sketch-grid codes
        (large data, or a worker that adopted shipped codes)."""
        if self._force_sketch:
            return True
        return _sketch_enabled() and not self.exact

    def stats(self) -> dict:
        """Cache occupancy/hit counters + byte footprint (observability,
        tests, and the large-n bench's memory column)."""
        with self._lock:
            prefix_bytes = sum(p.nbytes for p in self._prefix.values())
            out = {
                "splits": len(self._splits),
                "binned": len(self._binned),
                "transforms": len(self._transforms),
                "split_hits": self._splits.hits,
                "binned_hits": self._binned.hits,
                "transform_hits": self._transforms.hits,
                "prefix_buffers": len(self._prefix),
                "plane_bytes": (self._binned.nbytes + self._transforms.nbytes
                                + prefix_bytes),
                "sketch": self.sketch,
                "adopted_codes": False,
                "bundles": 0,
            }
        st = self._sketch_state
        if st is not None:
            out["bundles"] = len(st["bundles"])
            if st["base_codes"] is not None:
                out["adopted_codes"] = True
                out["base_codes_bytes"] = int(st["base_codes"].nbytes)
        return out

    # -- split memoization ---------------------------------------------
    def holdout_split(self, ratio: float, seed: int):
        """Memoized stratified holdout indices, exactly as
        ``evaluate_config`` computed them per-trial: a fresh
        ``default_rng(seed)`` over the full data."""
        key = ("holdout", float(ratio), int(seed))
        with self._lock:
            cached = self._splits.get(key)
        if cached is not None:
            _m_split_hit.inc()
            return cached
        _m_split_miss.inc()
        with trace_span("plane.split", kind="holdout"):
            y = self.data.y if self.data.is_classification else None
            tr, va = holdout_indices(
                self.data.n, ratio, y=y, rng=np.random.default_rng(seed)
            )
            value = (_readonly(tr), _readonly(va))
        with self._lock:
            self._splits.put(key, value)
        return value

    def kfold_split(self, n_sub: int, k: int, seed: int):
        """Memoized stratified k-fold indices over the first ``n_sub``
        rows (the paper's subsample-of-shuffled-data prefix)."""
        key = ("cv", int(n_sub), int(k), int(seed))
        with self._lock:
            cached = self._splits.get(key)
        if cached is not None:
            _m_split_hit.inc()
            return cached
        _m_split_miss.inc()
        with trace_span("plane.split", kind="cv"):
            y = self.data.y[:n_sub] if self.data.is_classification else None
            folds = [
                (_readonly(tr), _readonly(va))
                for tr, va in kfold_indices(
                    n_sub, k, y=y, rng=np.random.default_rng(seed)
                )
            ]
        with self._lock:
            self._splits.put(key, folds)
        return folds

    # -- binned codes ---------------------------------------------------
    def view(self, rows: np.ndarray, rows_key: tuple) -> BinnedMatrix:
        """A :class:`BinnedMatrix` over ``rows``; ``rows_key`` must
        uniquely describe the row subset (it is the memoization key)."""
        return BinnedMatrix(self, rows, rows_key)

    def binned_for(self, rows: np.ndarray, rows_key: tuple, max_bins: int):
        """(codes, n_bins, binner) for ``rows`` at ``max_bins``.

        Below :attr:`EXACT_ROW_LIMIT` this mirrors the in-learner path
        byte for byte: ``Binner(max_bins)`` fit and applied to
        ``X[rows]``.  On the sketch path (:attr:`sketch`) the binner is
        the dataset-level grid from :meth:`global_binner` and the codes
        are a gather — identical for every fold and on both sides of
        the shm boundary.  The binner carries a ``plane_token`` so
        validation-side transforms can memoize against it.
        """
        if self.sketch:
            return self._sketch_binned(rows, rows_key, max_bins)
        key = (rows_key, int(max_bins))
        with self._lock:
            cached = self._binned.get(key)
        if cached is not None:
            _m_codes_hit.inc()
            return cached
        _m_codes_miss.inc()
        with trace_span("plane.codes", max_bins=int(max_bins)):
            sub = self.data.X[rows]
            binner = Binner(max_bins=int(max_bins)).fit(sub)
            binner.plane_token = key
            codes = _readonly(binner.transform(sub))
            value = (codes, binner.n_bins_, binner)
        with self._lock:
            self._binned.put(key, value, nbytes=codes.nbytes)
        return value

    def transform_with(self, binner: Binner, rows: np.ndarray,
                       rows_key: tuple) -> np.ndarray:
        """``binner.transform(X[rows])``, memoized per (binner, rows).

        A binner without a ``plane_token`` (fit outside the plane) is
        applied directly — correctness never depends on the cache.
        """
        token = getattr(binner, "plane_token", None)
        if token is None:
            return binner.transform(self.data.X[rows])
        key = (token, rows_key)
        with self._lock:
            cached = self._transforms.get(key)
        if cached is not None:
            _m_codes_hit.inc()
            return cached
        _m_codes_miss.inc()
        with trace_span("plane.transform"):
            if token[0] == "global":
                # sketch-grid binner: derive from base codes (a gather
                # on adopted shm codes — never touches raw floats, so
                # this works against a codes-only worker's stub X)
                codes = binner.codes_from_base(self._base_codes_rows(rows))
            else:
                codes = binner.transform(self.data.X[rows])
            codes = _readonly(codes)
        with self._lock:
            self._transforms.put(key, codes, nbytes=codes.nbytes)
        return codes

    # -- the dataset-level sketch grid (large n) ------------------------
    def _ensure_sketch(self) -> dict:
        """Build (once) the sketch state: the base binner, per-base-bin
        sketch occupancy counts, per-feature default codes, and the
        exact-verified exclusive bundles.  Deterministic in the dataset
        content and the SKETCH_* class attributes."""
        st = self._sketch_state
        if st is not None:
            return st
        with self._sketch_lock:
            if self._sketch_state is not None:
                return self._sketch_state
            with trace_span("plane.sketch_fit"):
                base = SketchBinner(self.SKETCH_BASE_BINS, self.SKETCH_SIZE,
                                    self.SKETCH_SEED).fit(self.data.X)
                rows = base.sketch_rows(self.data.n)
                sk = base.transform(
                    self.data.X if rows.size == self.data.n
                    else self.data.X[rows]
                )
                _m_base_rows.inc(int(sk.shape[0]))
                counts = [
                    np.bincount(sk[:, j], minlength=int(base.n_bins_[j]))
                    for j in range(sk.shape[1])
                ]
                defaults = np.asarray([int(np.argmax(c)) for c in counts],
                                      dtype=np.int64)
                bundles: list[list[int]] = []
                if _bundling_enabled():
                    bundles = self._verify_bundles(
                        find_bundles(sk, base.n_bins_, defaults),
                        base, defaults,
                    )
            self._sketch_state = {
                "base": base, "counts": counts, "defaults": defaults,
                "bundles": bundles, "base_codes": None,
            }
        return self._sketch_state

    def _verify_bundles(self, bundles: list[list[int]], base: Binner,
                        defaults: np.ndarray) -> list[list[int]]:
        """Exactness pass: a bundle found on the sketch is kept only for
        members proven conflict-free on the *full* columns — bundling
        must never let two active codes collide.  Touches only the
        candidate columns, never the whole matrix."""
        X = self.data.X
        verified = []
        for b in bundles:
            busy = np.zeros(self.data.n, dtype=bool)
            keep = []
            for j in b:
                act = base.transform_column(X[:, j], j) != defaults[j]
                if np.any(busy & act):
                    continue
                busy |= act
                keep.append(j)
            if len(keep) >= 2:
                verified.append(keep)
        return verified

    def sketch_state(self) -> dict:
        """The (built-on-demand) sketch grid state — what the process
        backend ships to codes-only workers."""
        return self._ensure_sketch()

    def adopt_global_codes(self, base: Binner, counts: list, defaults,
                           bundles: list, base_codes: np.ndarray) -> None:
        """Inject a shipped sketch grid plus the full base-code matrix
        (a shared-memory view, in workers).  The plane then serves every
        request by gathering from ``base_codes`` — raw ``X`` is never
        read again, so a stub feature matrix suffices."""
        with self._sketch_lock:
            self._sketch_state = {
                "base": base,
                "counts": [np.asarray(c) for c in counts],
                "defaults": np.asarray(defaults, dtype=np.int64),
                "bundles": [list(map(int, b)) for b in bundles],
                "base_codes": base_codes,
            }
            self._force_sketch = True

    def fill_base_codes(self, out: np.ndarray) -> np.ndarray:
        """Write the full base-code matrix into ``out`` chunk-wise (the
        shm exporter passes the segment-backed array, so peak transient
        float memory stays ~16 MB regardless of n)."""
        st = self._ensure_sketch()
        base = st["base"]
        n, d = self.data.n, self.data.d
        step = max(1, (16 << 20) // max(1, d * 8))
        for i in range(0, n, step):
            out[i:i + step] = base.transform(self.data.X[i:i + step])
        _m_base_rows.inc(int(n))
        return out

    def global_binner(self, max_bins: int):
        """The dataset-level binner serving ``max_bins`` (memoized).

        ``max_bins >= SKETCH_BASE_BINS`` serves the base grid itself —
        the sketch grid is the fidelity ceiling, searched values above
        it are clamped; coarser values get an equi-depth
        :class:`DerivedBinner`.  When exclusive bundles exist the
        result is wrapped in a :class:`BundledBinner` so learners see
        the merged columns transparently.
        """
        st = self._ensure_sketch()
        base = st["base"]
        eff = min(int(max_bins), int(base.max_bins))
        with self._lock:
            binner = self._global_binners.get(eff)
        if binner is not None:
            return binner
        inner = (base if eff == int(base.max_bins)
                 else DerivedBinner(base, st["counts"], eff))
        if st["bundles"]:
            defaults = st["defaults"]
            if inner is base:
                inner_defaults = defaults
            else:
                inner_defaults = np.asarray(
                    [int(inner.remaps_[j][defaults[j]])
                     for j in range(len(defaults))],
                    dtype=np.int64,
                )
            layout = BundleLayout(inner.n_bins_, inner_defaults,
                                  st["bundles"])
            binner = BundledBinner(inner, layout)
        else:
            binner = inner
        binner.plane_token = ("global", eff)
        with self._lock:
            binner = self._global_binners.setdefault(eff, binner)
        return binner

    def _base_codes_rows(self, rows: np.ndarray) -> np.ndarray:
        """Base-grid codes for ``rows``: a gather when the full matrix
        was adopted (shm workers), a transform of just those rows
        otherwise."""
        st = self._ensure_sketch()
        bc = st["base_codes"]
        if bc is not None:
            return bc[rows]
        _m_base_rows.inc(int(np.size(rows)))
        return st["base"].transform(self.data.X[rows])

    def _sketch_binned(self, rows: np.ndarray, rows_key: tuple,
                       max_bins: int):
        binner = self.global_binner(max_bins)
        eff = binner.plane_token[-1]
        if rows_key and rows_key[0] == "ho-tr":
            # rows are a prefix of the fixed holdout training order
            # (rows_key == ("ho-tr", ratio, seed, s)); serve them from
            # the fill-on-demand prefix buffer
            codes = self._prefix_codes(rows_key, eff, binner,
                                       int(np.size(rows)))
            return (codes, binner.n_bins_, binner)
        key = (rows_key, "g", eff)
        with self._lock:
            cached = self._binned.get(key)
        if cached is not None:
            _m_codes_hit.inc()
            return cached
        _m_codes_miss.inc()
        with trace_span("plane.codes", max_bins=int(eff)):
            codes = _readonly(
                binner.codes_from_base(self._base_codes_rows(rows))
            )
            value = (codes, binner.n_bins_, binner)
        with self._lock:
            self._binned.put(key, value, nbytes=codes.nbytes)
        return value

    def _prefix_codes(self, rows_key: tuple, eff: int, binner,
                      s: int) -> np.ndarray:
        pkey = (rows_key[:3], eff)
        with self._lock:
            pc = self._prefix.get(pkey)
            if pc is not None:
                self._prefix.move_to_end(pkey)
        if pc is None:
            order, _ = self.holdout_split(rows_key[1], rows_key[2])
            fresh = _PrefixCodes(self, order, binner)
            with self._lock:
                pc = self._prefix.setdefault(pkey, fresh)
                self._prefix.move_to_end(pkey)
                while len(self._prefix) > self.MAX_PREFIX_BUFFERS:
                    self._prefix.popitem(last=False)
        if s <= pc._filled:
            _m_codes_hit.inc()
        else:
            _m_codes_miss.inc()
        return pc.codes(s)


# ----------------------------------------------------------------------
#: fallback ``max_bins`` set for plane warmup when the learner registry
#: cannot be inspected (LGBM/XGB 255, CatBoost-like 128, forests 64)
_WARM_MAX_BINS = (255, 128, 64)

_warm_bins_cache: tuple | None = None


def _default_warm_bins() -> tuple:
    """The ``max_bins`` values a first trial actually asks the plane for,
    derived from the registered plane-aware learners' own defaults
    (``max_bin`` constructor default, or the ``_plane_max_bins`` class
    attribute for learners that bin at a fixed width) — so warmup tracks
    the learners instead of a hardcoded copy of their defaults."""
    global _warm_bins_cache
    if _warm_bins_cache is not None:
        return _warm_bins_cache
    import inspect

    from ..core.registry import all_learners  # lazy: avoids import cycle

    bins = set()
    for spec in all_learners().values():
        for cls in (spec.classifier_cls, spec.regressor_cls):
            if cls is None or not getattr(cls, "_uses_binned_plane", False):
                continue
            fixed = getattr(cls, "_plane_max_bins", None)
            if fixed is not None:
                bins.add(int(fixed))
                continue
            try:
                default = inspect.signature(cls).parameters["max_bin"].default
                bins.add(int(default))
            except (KeyError, TypeError, ValueError):
                pass
    _warm_bins_cache = tuple(sorted(bins, reverse=True)) or _WARM_MAX_BINS
    return _warm_bins_cache


def warm_plane(
    data: Dataset,
    *,
    resampling: str = "holdout",
    holdout_ratio: float = 0.1,
    seed: int = 0,
    n_splits: int = 5,
    sample_size: int | None = None,
    max_bins: tuple | None = None,
):
    """Pre-populate the plane caches a search's first trial will hit.

    Process workers call this from their initializer
    (:func:`repro.exec.process._init_worker`) so the first trial per
    worker pays no cold-cache cost: the split indices for the search's
    (resampling, ratio/k, seed), the training-prefix bin codes at the
    default ``max_bins`` of each histogram learner family, and the
    matching validation-side transforms are computed up front.  Keys are
    built exactly as :func:`repro.core.evaluate._plane_error` builds
    them — a warmed entry *is* the entry a trial looks up.

    ``sample_size`` mirrors the controller's initial sample size (the
    fidelity the first trials run at); ``None`` warms the full training
    slice.  No-op (returns None) when the plane is disabled; split
    warming still happens for datasets too large for exact pre-binning.
    """
    if not plane_enabled():
        return None
    if max_bins is None:
        max_bins = _default_warm_bins()
    plane = plane_for(data)
    if resampling == "holdout":
        tr, va = plane.holdout_split(holdout_ratio, seed)
        s = tr.size if sample_size is None else min(int(sample_size), tr.size)
        if plane.exact or plane.sketch:
            tr_key = ("ho-tr", float(holdout_ratio), int(seed), int(s))
            va_key = ("ho-va", float(holdout_ratio), int(seed))
            for mb in max_bins:
                _, _, binner = plane.binned_for(tr[:s], tr_key, mb)
                plane.transform_with(binner, va, va_key)
    elif resampling == "cv":
        n_sub = (
            data.n if sample_size is None else min(int(sample_size), data.n)
        )
        k = min(int(n_splits), n_sub)
        folds = plane.kfold_split(n_sub, k, seed)
        if plane.exact or plane.sketch:
            for i, (tr, va) in enumerate(folds):
                for mb in max_bins:
                    _, _, binner = plane.binned_for(
                        tr, ("cv-tr", n_sub, k, int(seed), i), mb
                    )
                    plane.transform_with(
                        binner, va, ("cv-va", n_sub, k, int(seed), i)
                    )
    return plane


_plane_attach_lock = threading.Lock()


def plane_for(data: Dataset) -> BinnedDataset:
    """The shared plane for ``data``, cached on the dataset object.

    Storing the plane as an attribute of the :class:`Dataset` ties its
    lifetime (and the up-to-hundreds-of-MB of cached codes it may hold)
    exactly to the data: when the caller drops the dataset, the plane
    goes with it — no module-global registry pinning old datasets
    alive.  A row-sample CRC is revalidated per lookup so in-place
    mutation of the arrays rebuilds the plane rather than serving stale
    codes and splits.
    """
    token = _quick_content_token(data)
    plane = getattr(data, "_binned_plane", None)
    if (
        plane is not None
        and plane.data is data
        and plane._content_token == token
    ):
        return plane
    with _plane_attach_lock:
        plane = getattr(data, "_binned_plane", None)
        if (
            plane is not None
            and plane.data is data
            and plane._content_token == token
        ):
            return plane
        plane = BinnedDataset(data)
        try:
            data._binned_plane = plane
        except (AttributeError, TypeError):  # frozen/slotted container:
            pass  # fall back to an uncached per-call plane
    return plane
