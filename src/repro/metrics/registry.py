"""Metric registry: maps metric names to the *error* the AutoML layer
minimises (the paper's validation error ε̃).

A :class:`Metric` bundles the scoring function with how the search consumes
it: whether the learner must produce probabilities, and how the raw score
is turned into an error to minimise (``1 - auc``, ``1 - r2``, log-loss as
is...).  Custom metrics — one of FLAML's advertised API features — are
created with :func:`make_metric` or by passing any callable
``f(y_true, prediction) -> error`` to ``AutoML.fit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .classification import accuracy_score, log_loss, roc_auc_score
from .forecast import _mase_error, pinball_loss, smape
from .regression import mae, mse, r2_score

__all__ = ["Metric", "make_metric", "get_metric", "default_metric_name"]


@dataclass(frozen=True)
class Metric:
    """A named error function for trial evaluation.

    ``error_fn(y_true, pred)`` must return a value where *lower is better*;
    ``needs_proba`` selects whether classifiers are asked for
    ``predict_proba`` (pred is (n, K)) or ``predict`` (labels).
    """

    name: str
    error_fn: Callable[[np.ndarray, np.ndarray], float]
    needs_proba: bool = False
    #: forecast metrics that scale by the training series (MASE): the
    #: temporal trial evaluator calls ``error_fn(y_true, pred, history)``
    needs_history: bool = False

    def error(self, y_true: np.ndarray, pred: np.ndarray, labels=None,
              history=None) -> float:
        """Evaluate the error (lower is better) of pred against y_true.

        ``history`` (the training series) feeds ``needs_history``
        metrics; they fall back to a weaker internal scale without it.
        """
        if self.needs_history:
            return float(self.error_fn(y_true, pred, history))  # type: ignore[call-arg]
        try:
            return float(self.error_fn(y_true, pred, labels))  # type: ignore[call-arg]
        except TypeError:
            return float(self.error_fn(y_true, pred))


def make_metric(
    fn: Callable[[np.ndarray, np.ndarray], float],
    name: str = "custom",
    needs_proba: bool = False,
    greater_is_better: bool = False,
) -> Metric:
    """Wrap a user scoring function into a :class:`Metric`.

    If ``greater_is_better`` the score is negated so the search can minimise.
    """
    if greater_is_better:
        return Metric(name, lambda yt, p: -float(fn(yt, p)), needs_proba)
    return Metric(name, lambda yt, p: float(fn(yt, p)), needs_proba)


def _auc_error(y_true, proba, labels=None):
    p = proba[:, -1] if (np.ndim(proba) == 2 and proba.shape[1] == 2) else proba
    return 1.0 - roc_auc_score(y_true, p)


_REGISTRY: dict[str, Metric] = {
    "roc_auc": Metric("roc_auc", _auc_error, needs_proba=True),
    "log_loss": Metric("log_loss", lambda yt, p, labels=None: log_loss(yt, p, labels),
                       needs_proba=True),
    "accuracy": Metric("accuracy", lambda yt, p: 1.0 - accuracy_score(yt, p)),
    "r2": Metric("r2", lambda yt, p: 1.0 - r2_score(yt, p)),
    "mse": Metric("mse", lambda yt, p: mse(yt, p)),
    "mae": Metric("mae", lambda yt, p: mae(yt, p)),
    # forecast metrics (module-level error_fns: picklable for the
    # process backend); "mase" defaults to period 1 — AutoML substitutes
    # metrics.forecast.mase_metric(m) when a seasonal period is given
    "smape": Metric("smape", smape),
    "mase": Metric("mase", _mase_error, needs_history=True),
    "pinball": Metric("pinball", pinball_loss),
}


def default_metric_name(task: str) -> str:
    """The benchmark's metric per task type (§5): roc-auc for binary,
    neg log-loss for multiclass, r2 for regression — plus mase for the
    forecasting extension."""
    return {
        "binary": "roc_auc",
        "multiclass": "log_loss",
        "regression": "r2",
        "forecast": "mase",
    }[task]


def get_metric(metric: str | Metric | Callable, task: str | None = None) -> Metric:
    """Resolve a metric spec (name | Metric | callable) to a :class:`Metric`."""
    if isinstance(metric, Metric):
        return metric
    if callable(metric):
        return make_metric(metric, name=getattr(metric, "__name__", "custom"),
                           needs_proba=getattr(metric, "needs_proba", False))
    if metric == "auto":
        if task is None:
            raise ValueError("metric='auto' requires a task")
        metric = default_metric_name(task)
    try:
        return _REGISTRY[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; known: {sorted(_REGISTRY)}"
        ) from None
