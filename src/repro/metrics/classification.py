"""Classification metrics (re-implementations of the sklearn ones FLAML uses).

The AutoML benchmark scores binary tasks with roc-auc and multiclass tasks
with negative log-loss; both are reproduced here, tie-corrected and
numerically safe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc_score", "log_loss", "accuracy_score", "error_rate"]


def _rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (1-based), ties share the mean rank."""
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(x.size, dtype=np.float64)
    sx = x[order]
    # boundaries of tie groups
    boundary = np.nonzero(np.diff(sx))[0] + 1
    starts = np.concatenate([[0], boundary])
    ends = np.concatenate([boundary, [x.size]])
    for s, e in zip(starts, ends):
        ranks[order[s:e]] = 0.5 * (s + e - 1) + 1
    return ranks


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve.

    Binary: ``y_score`` is the positive-class score, shape (n,) or the
    (n, 2) probability matrix.  Multiclass: (n, K) probabilities scored
    one-vs-rest, macro-averaged (sklearn ``ovr``/``macro``).
    """
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=np.float64)
    classes = np.unique(y_true)
    if classes.size < 2:
        raise ValueError("roc_auc_score requires at least two classes in y_true")
    if classes.size == 2:
        if y_score.ndim == 2:
            y_score = y_score[:, -1]
        pos = y_true == classes[1]
        n_pos = int(pos.sum())
        n_neg = y_true.size - n_pos
        ranks = _rankdata(y_score)
        # Mann-Whitney U statistic
        u = ranks[pos].sum() - n_pos * (n_pos + 1) / 2.0
        return float(u / (n_pos * n_neg))
    if y_score.ndim != 2 or y_score.shape[1] != classes.size:
        raise ValueError(
            f"multiclass roc_auc needs (n, {classes.size}) scores, got {y_score.shape}"
        )
    aucs = []
    for k, c in enumerate(classes):
        yk = (y_true == c).astype(np.int64)
        if yk.sum() in (0, yk.size):
            continue
        aucs.append(roc_auc_score(yk, y_score[:, k]))
    return float(np.mean(aucs))


def log_loss(y_true: np.ndarray, y_proba: np.ndarray, labels=None) -> float:
    """Cross-entropy between labels and predicted probabilities.

    ``y_proba`` is (n, K); column order follows ``np.unique(y_true)`` unless
    ``labels`` is given (needed when a fold is missing a class).
    """
    y_true = np.asarray(y_true)
    y_proba = np.asarray(y_proba, dtype=np.float64)
    classes = np.asarray(labels) if labels is not None else np.unique(y_true)
    if y_proba.ndim == 1:
        y_proba = np.column_stack([1 - y_proba, y_proba])
    if (
        labels is None
        and y_proba.shape[1] != classes.size
        and np.isin(classes, np.arange(y_proba.shape[1])).all()
    ):
        # a fold may not contain every class: fall back to 0..K-1 label ids
        classes = np.arange(y_proba.shape[1])
    if y_proba.shape[1] != classes.size:
        raise ValueError(
            f"y_proba has {y_proba.shape[1]} columns for {classes.size} classes"
        )
    lut = {c: i for i, c in enumerate(classes)}
    idx = np.array([lut[v] for v in y_true])
    p = np.clip(y_proba[np.arange(y_true.size), idx], 1e-15, 1.0)
    return float(-np.mean(np.log(p)))


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    return float(np.mean(y_true == y_pred))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy_score(y_true, y_pred)
