"""Forecast-accuracy metrics: sMAPE, MASE, pinball loss.

All three are errors (lower is better) over aligned forecast/actual
vectors.  MASE additionally scales by the in-sample seasonal-naive error
of the *training* series — the trial evaluator passes that history
through when ``Metric.needs_history`` is set, and the metric falls back
to scaling by the actuals' own naive differences when no history is
available (e.g. ``AutoML.score`` on a bare future window).
"""

from __future__ import annotations

from functools import partial

import numpy as np

__all__ = ["smape", "mase", "pinball_loss", "mase_metric"]

_EPS = 1e-12


def _aligned(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=np.float64).ravel()
    yp = np.asarray(y_pred, dtype=np.float64).ravel()
    if yt.shape != yp.shape:
        raise ValueError(
            f"forecast and actuals differ in length: {yt.size} vs {yp.size}"
        )
    if yt.size == 0:
        raise ValueError("cannot score an empty forecast")
    return yt, yp


def smape(y_true, y_pred) -> float:
    """Symmetric mean absolute percentage error, in [0, 2]."""
    yt, yp = _aligned(y_true, y_pred)
    return float(
        np.mean(2.0 * np.abs(yp - yt) / (np.abs(yt) + np.abs(yp) + _EPS))
    )


def _naive_scale(series: np.ndarray, m: int) -> float:
    """Mean absolute ``m``-step naive error of a series (the MASE scale)."""
    if series.size > m:
        return float(np.mean(np.abs(series[m:] - series[:-m])))
    return 0.0


def mase(y_true, y_pred, history=None, m: int = 1) -> float:
    """Mean absolute scaled error (Hyndman & Koehler).

    ``history`` is the training series whose in-sample seasonal-naive
    (period ``m``) absolute error provides the scale; MASE < 1 means the
    forecast beats that baseline on average.  Without a history the
    actuals themselves provide the (weaker) scale.
    """
    yt, yp = _aligned(y_true, y_pred)
    m = max(1, int(m))
    scale = 0.0
    if history is not None:
        scale = _naive_scale(np.asarray(history, dtype=np.float64).ravel(), m)
    if scale <= _EPS:
        scale = _naive_scale(yt, min(m, max(1, yt.size - 1)))
    if scale <= _EPS:
        scale = float(np.mean(np.abs(yt))) or 1.0
    return float(np.mean(np.abs(yt - yp)) / max(scale, _EPS))


def pinball_loss(y_true, y_pred, q: float = 0.5) -> float:
    """Quantile (pinball) loss at quantile ``q`` (0.5 = half the MAE)."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    yt, yp = _aligned(y_true, y_pred)
    diff = yt - yp
    return float(np.mean(np.maximum(q * diff, (q - 1.0) * diff)))


def _mase_error(y_true, y_pred, history=None, m: int = 1) -> float:
    return mase(y_true, y_pred, history=history, m=m)


def mase_metric(m: int = 1):
    """A :class:`~repro.metrics.registry.Metric` computing MASE at period
    ``m``.  Built on :func:`functools.partial` of a module-level function
    so it stays picklable for the process trial backend."""
    from .registry import Metric

    name = "mase" if m <= 1 else f"mase@{int(m)}"
    return Metric(name, partial(_mase_error, m=int(m)), needs_history=True)
