"""Additional metrics registered for custom optimisation.

The paper's API lets users optimise any metric; these cover the common
requests beyond the benchmark's defaults: F1 (binary / macro / micro),
precision, recall, balanced accuracy, the Brier score, MAPE, Spearman
rank correlation, and the selectivity literature's 95th-percentile
q-error (§5.3).
"""

from __future__ import annotations

import numpy as np

from .regression import q_error_percentile
from .registry import Metric, _REGISTRY

__all__ = [
    "balanced_accuracy_score",
    "brier_score",
    "f1_score",
    "mape",
    "precision_score",
    "recall_score",
    "spearman_rho",
]


def _binary_counts(y_true, y_pred, positive):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = np.sum((y_pred == positive) & (y_true == positive))
    fp = np.sum((y_pred == positive) & (y_true != positive))
    fn = np.sum((y_pred != positive) & (y_true == positive))
    return float(tp), float(fp), float(fn)


def precision_score(y_true, y_pred, positive=1) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    tp, fp, _ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if tp + fp > 0 else 0.0


def recall_score(y_true, y_pred, positive=1) -> float:
    """TP / (TP + FN); 0 when there are no positives."""
    tp, _, fn = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if tp + fn > 0 else 0.0


def f1_score(y_true, y_pred, average: str = "binary", positive=1) -> float:
    """F1: harmonic mean of precision and recall.

    ``average``: 'binary' (the given positive class), 'macro' (unweighted
    class mean) or 'micro' (global counts — equals accuracy for
    single-label problems).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if average == "binary":
        p = precision_score(y_true, y_pred, positive)
        r = recall_score(y_true, y_pred, positive)
        return 2 * p * r / (p + r) if p + r > 0 else 0.0
    classes = np.unique(y_true)
    if average == "macro":
        return float(
            np.mean([f1_score(y_true, y_pred, "binary", c) for c in classes])
        )
    if average == "micro":
        tp = fp = fn = 0.0
        for c in classes:
            t, f_, n = _binary_counts(y_true, y_pred, c)
            tp, fp, fn = tp + t, fp + f_, fn + n
        denom = 2 * tp + fp + fn
        return 2 * tp / denom if denom > 0 else 0.0
    raise ValueError(f"unknown average {average!r}")


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean per-class recall (robust to class imbalance)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float(
        np.mean([recall_score(y_true, y_pred, c) for c in np.unique(y_true)])
    )


def brier_score(y_true: np.ndarray, proba: np.ndarray) -> float:
    """Mean squared error of predicted probabilities (lower is better).

    Binary: ``proba`` is the positive-class probability (or an (n, 2)
    matrix).  Multiclass: mean squared distance between the (n, K)
    probability matrix and the one-hot encoding of ``y_true``, summed over
    classes (the original Brier definition).
    """
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    classes = np.unique(y_true)
    if classes.size == 2:
        p = proba[:, -1] if proba.ndim == 2 else proba
        target = (y_true == classes[1]).astype(np.float64)
        return float(np.mean((p - target) ** 2))
    if proba.ndim != 2 or proba.shape[1] != classes.size:
        raise ValueError(
            f"multiclass brier needs (n, {classes.size}) probabilities, "
            f"got {proba.shape}"
        )
    onehot = (y_true[:, None] == classes[None, :]).astype(np.float64)
    return float(np.mean(((proba - onehot) ** 2).sum(axis=1)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, floor: float = 1e-9) -> float:
    """Mean absolute percentage error; tiny targets are floored."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(
        np.mean(np.abs(y_pred - y_true) / np.maximum(np.abs(y_true), floor))
    )


def spearman_rho(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Spearman rank correlation (tie-averaged ranks); in [-1, 1]."""
    def _rank(a):
        a = np.asarray(a, dtype=np.float64)
        order = np.argsort(a, kind="stable")
        ranks = np.empty(a.size, dtype=np.float64)
        ranks[order] = np.arange(1, a.size + 1)
        # average ranks over ties
        uniq, inv, counts = np.unique(a, return_inverse=True,
                                      return_counts=True)
        sums = np.bincount(inv, weights=ranks)
        return (sums / counts)[inv]

    ra, rb = _rank(y_true), _rank(y_pred)
    sa, sb = ra.std(), rb.std()
    if sa < 1e-12 or sb < 1e-12:
        return 0.0
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


# register as minimisable errors (1 - score)
_REGISTRY["f1"] = Metric("f1", lambda yt, p: 1.0 - f1_score(yt, p))
_REGISTRY["macro_f1"] = Metric(
    "macro_f1", lambda yt, p: 1.0 - f1_score(yt, p, average="macro")
)
_REGISTRY["micro_f1"] = Metric(
    "micro_f1", lambda yt, p: 1.0 - f1_score(yt, p, average="micro")
)
_REGISTRY["balanced_accuracy"] = Metric(
    "balanced_accuracy", lambda yt, p: 1.0 - balanced_accuracy_score(yt, p)
)
_REGISTRY["brier"] = Metric("brier", lambda yt, p: brier_score(yt, p),
                            needs_proba=True)
_REGISTRY["mape"] = Metric("mape", lambda yt, p: mape(yt, p))
_REGISTRY["spearman"] = Metric(
    "spearman", lambda yt, p: 1.0 - spearman_rho(yt, p)
)
_REGISTRY["q_error_p95"] = Metric(
    "q_error_p95", lambda yt, p: q_error_percentile(yt, p, 95)
)
