"""Regression metrics, including the selectivity-estimation q-error."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "mse", "rmse", "mae", "q_error", "q_error_percentile"]


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1 is perfect, 0 matches the mean
    predictor, negative is worse than the mean predictor."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    denom = float(np.sum((y_true - y_true.mean()) ** 2))
    if denom == 0.0:
        return 1.0 if np.allclose(y_true, y_pred) else 0.0
    return 1.0 - float(np.sum((y_true - y_pred) ** 2)) / denom


def q_error(true_sel: np.ndarray, pred_sel: np.ndarray, floor: float = 1e-9) -> np.ndarray:
    """Per-query q-error: ``max(pred/true, true/pred)`` with clamping.

    The standard relative error metric of the selectivity-estimation
    literature (Dutt et al. 2019); both arguments are selectivities (or
    cardinalities) and are floored to avoid division blow-ups.
    """
    t = np.maximum(np.asarray(true_sel, dtype=np.float64), floor)
    p = np.maximum(np.asarray(pred_sel, dtype=np.float64), floor)
    return np.maximum(p / t, t / p)


def q_error_percentile(
    true_sel: np.ndarray, pred_sel: np.ndarray, percentile: float = 95.0
) -> float:
    """Percentile of the q-error distribution (paper reports the 95th)."""
    return float(np.percentile(q_error(true_sel, pred_sel), percentile))
