"""Error metrics for trials and benchmark scoring."""

from .classification import accuracy_score, error_rate, log_loss, roc_auc_score
from .extra import (
    balanced_accuracy_score,
    brier_score,
    f1_score,
    mape,
    precision_score,
    recall_score,
    spearman_rho,
)
from .forecast import mase, mase_metric, pinball_loss, smape
from .registry import Metric, default_metric_name, get_metric, make_metric
from .regression import mae, mse, q_error, q_error_percentile, r2_score, rmse

__all__ = [
    "Metric",
    "accuracy_score",
    "balanced_accuracy_score",
    "brier_score",
    "default_metric_name",
    "error_rate",
    "f1_score",
    "get_metric",
    "log_loss",
    "mae",
    "make_metric",
    "mape",
    "mase",
    "mase_metric",
    "mse",
    "pinball_loss",
    "precision_score",
    "q_error",
    "q_error_percentile",
    "r2_score",
    "recall_score",
    "rmse",
    "roc_auc_score",
    "smape",
    "spearman_rho",
]
