"""Deployment layer: artifacts, a versioned registry, and a prediction
server (the ROADMAP's "serve heavy traffic" direction).

* :mod:`~repro.serve.artifact` — :class:`PipelineArtifact`, the
  self-contained JSON unit of deployment (preprocessors + model +
  metadata) that predicts on raw rows;
* :mod:`~repro.serve.registry` — :class:`ModelRegistry`, named models
  with monotonic versions, ``latest``/stage aliases, promote/rollback,
  and SHA-256 integrity checks;
* :mod:`~repro.serve.batching` — :class:`MicroBatcher`, coalescing
  concurrent single-row predicts into batched model calls, with
  p50/p95/p99 latency stats;
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — a stdlib
  HTTP server (``/predict`` ``/models`` ``/health`` ``/metrics``
  ``/fit``) and its client (``python -m repro serve`` starts the
  server);
* :mod:`~repro.serve.fitservice` — :class:`FitService`, multi-tenant
  fit-as-a-service: concurrent AutoML searches multiplexing one shared
  worker pool with per-tenant fairness, budgets, and registry names
  (``python -m repro serve --fit``).
"""

from .artifact import ARTIFACT_FORMAT, PipelineArtifact, export_artifact
from .batching import MicroBatcher, ServingStats
from .client import ServeClient, ServeClientError
from .fitservice import (
    FitJob,
    FitService,
    FitServiceError,
    TenantBudgetExceeded,
    UnknownJobError,
)
from .registry import ModelRegistry, RegistryError
from .server import ModelServer, build_http_server, serve

__all__ = [
    "ARTIFACT_FORMAT",
    "PipelineArtifact",
    "export_artifact",
    "MicroBatcher",
    "ServingStats",
    "ServeClient",
    "ServeClientError",
    "FitJob",
    "FitService",
    "FitServiceError",
    "TenantBudgetExceeded",
    "UnknownJobError",
    "ModelRegistry",
    "RegistryError",
    "ModelServer",
    "build_http_server",
    "serve",
]
