"""Micro-batching JSON prediction server (stdlib only).

A :class:`ModelServer` fronts a :class:`~repro.serve.registry.ModelRegistry`
(or a fixed set of artifacts) and exposes it over HTTP via
``ThreadingHTTPServer`` — one OS thread per connection, which is exactly
the traffic shape :class:`~repro.serve.batching.MicroBatcher` coalesces:
many threads each carrying one row.

Endpoints (all JSON):

``POST /predict``
    ``{"model": name, "version": int|alias, "row": [...]}`` or
    ``{"model": name, "rows": [[...], ...], "proba": true|false}``.
    Single rows go through the micro-batcher; multi-row requests are
    predicted directly (the client already batched them).  Forecast
    models take ``{"model": name, "history": [...], "horizon": H}`` and
    answer with the next ``H`` values of the series.
``GET /models``
    Registry index: every model's versions and aliases.
``GET /health``
    Liveness + the names currently servable.
``GET /metrics``
    Per-model request/batch counters and latency percentiles.
``POST /fit`` / ``GET /fit`` / ``GET /fit/<id>`` / ``POST /fit/<id>/cancel``
    Multi-tenant fit-as-a-service (present when the server is built
    with a :class:`~repro.serve.fitservice.FitService`, i.e. ``python
    -m repro serve --fit``): submit a training payload, list or poll
    jobs, cancel a running search.  Winners land in the registry as
    ``<tenant>.<name>`` and become servable immediately.

Run it with ``python -m repro serve --registry DIR`` (see
:mod:`repro.cli`) or embed it: ``build_http_server`` returns a standard
``http.server`` object, so tests and examples drive it with
``serve_forever`` in a thread.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from ..faults import FaultError, fault_hook
from ..native import native_status
from ..obs.metrics import REGISTRY, render_prometheus
from ..obs.trace import trace_context, trace_span
from .artifact import PipelineArtifact
from .batching import BatcherSaturated, MicroBatcher, ServingStats
from .registry import ModelRegistry, RegistryError

__all__ = [
    "AdmissionRejected",
    "DeadlineExceeded",
    "ModelServer",
    "build_http_server",
    "serve",
]

_log = logging.getLogger("repro.serve")

#: Prometheus text exposition content type (format 0.0.4)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: the endpoints we label metrics with; anything else becomes "other"
#: so a port scanner cannot explode the label cardinality
_KNOWN_ENDPOINTS = ("/predict", "/models", "/health", "/metrics", "/fit")

#: what a shed client should wait before retrying (seconds; the
#: ``Retry-After`` header rounds it up to 1)
_RETRY_AFTER_S = 1


class AdmissionRejected(RuntimeError):
    """More than ``max_inflight`` predicts are already running: the
    request is refused at the door (HTTP 429 + ``Retry-After``) so
    accepted requests keep their latency instead of everyone queueing."""


class DeadlineExceeded(RuntimeError):
    """The request's per-request deadline (``deadline_ms``) elapsed
    before a result was produced; the client gets 503 rather than an
    answer it has stopped waiting for."""


class ModelServer:
    """Registry-backed prediction service with per-model micro-batching."""

    def __init__(self, registry: ModelRegistry | None = None,
                 artifacts: dict[str, PipelineArtifact] | None = None,
                 max_batch: int = 32, max_delay_ms: float = 2.0,
                 batching: bool = True, max_horizon: int = 1000,
                 slow_request_ms: float = 500.0,
                 max_inflight: int | None = None,
                 deadline_ms: float | None = None,
                 max_queue: int | None = None,
                 fit_service=None,
                 max_model_state: int = 256,
                 max_metrics_models: int = 64) -> None:
        """``max_inflight`` bounds concurrently running predicts —
        request number ``max_inflight + 1`` is rejected immediately
        (:class:`AdmissionRejected` → HTTP 429) instead of queueing.
        ``deadline_ms`` is a per-request deadline: a request that cannot
        produce its result in time fails (:class:`DeadlineExceeded` →
        HTTP 503) rather than answering a client that gave up.
        ``max_queue`` bounds each micro-batcher's pending-row queue
        (saturation → :class:`~repro.serve.batching.BatcherSaturated` →
        HTTP 503).  All three default to off (historical unbounded
        behaviour).

        ``fit_service`` mounts a
        :class:`~repro.serve.fitservice.FitService` under ``/fit`` (and
        the server adopts its registry when none was given, so winners
        are servable immediately).  With tenants registering models
        freely, per-model serving state can no longer grow unboundedly:
        ``max_model_state`` caps cached artifacts / stats / batchers
        (least-recently-served evicted first, rebuilt on demand) and
        ``max_metrics_models`` caps the per-model label cardinality of
        ``/metrics`` — everything beyond the most recently active
        models is aggregated under ``model="_other"``."""
        if fit_service is not None and registry is None:
            registry = fit_service.registry
        if registry is None and not artifacts and fit_service is None:
            raise ValueError(
                "need a registry, named artifacts, or a fit service"
            )
        if max_model_state < 1:
            raise ValueError(
                f"max_model_state must be >= 1, got {max_model_state}"
            )
        if max_metrics_models < 1:
            raise ValueError(
                f"max_metrics_models must be >= 1, got {max_metrics_models}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.registry = registry
        self._fixed = dict(artifacts or {})
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.batching = bool(batching)
        self.max_horizon = int(max_horizon)
        #: requests slower than this are logged with their request id
        self.slow_request_ms = float(slow_request_ms)
        self.max_inflight = max_inflight
        self.deadline_ms = deadline_ms
        self.max_queue = max_queue
        self._inflight_sem = (
            threading.BoundedSemaphore(int(max_inflight))
            if max_inflight is not None else None
        )
        #: requests refused without prediction, by reason (also exported
        #: as ``repro_serving_shed_total`` and shown by ``/health``)
        self.shed_counts = {"inflight": 0, "queue": 0, "deadline": 0}
        self._gauge_inflight = REGISTRY.gauge(
            "repro_serving_inflight",
            "Predict requests currently being served.",
        )
        self.fit_service = fit_service
        self.max_model_state = int(max_model_state)
        self.max_metrics_models = int(max_metrics_models)
        self._lock = threading.Lock()
        self._loaded: dict[tuple[str, int | str], PipelineArtifact] = {}
        self._stats: dict[str, ServingStats] = {}
        self._batchers: dict[tuple[str, int | str, bool], MicroBatcher] = {}
        # recency order over (name, version) pairs holding any serving
        # state; oldest evicted once max_model_state is exceeded
        self._state_lru: OrderedDict[tuple[str, int | str], None] = \
            OrderedDict()

    def _shed(self, reason: str) -> None:
        with self._lock:
            self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        REGISTRY.counter(
            "repro_serving_shed_total",
            "Predict requests refused without running the model, "
            "by reason.",
            reason=reason,
        ).inc()

    # -- resolution ----------------------------------------------------
    def _resolve(self, name: str,
                 version: int | str) -> tuple[PipelineArtifact, int | str]:
        """Load (and cache) the artifact serving ``name`` at ``version``."""
        if name in self._fixed:
            if version not in ("latest", "-"):
                raise RegistryError(
                    f"model {name!r} is served from a fixed artifact with "
                    f"no version history; requested version {version!r} "
                    "cannot be honoured (omit it or use 'latest')"
                )
            return self._fixed[name], "-"
        if self.registry is None:
            raise RegistryError(
                f"unknown model {name!r}; serving: {sorted(self._fixed)}"
            )
        resolved = self.registry.resolve(name, version)
        with self._lock:
            art = self._loaded.get((name, resolved))
        if art is None:
            art = self.registry.get(name, resolved)  # integrity-checked
            with self._lock:
                self._loaded.setdefault((name, resolved), art)
        self._touch(name, resolved)
        return art, resolved

    @staticmethod
    def _stats_key(name: str, version: int | str) -> str:
        return f"{name}@{version}" if version != "-" else name

    def _stats_for(self, name: str, version: int | str) -> ServingStats:
        key = self._stats_key(name, version)
        with self._lock:
            if key not in self._stats:
                self._stats[key] = ServingStats()
            stats = self._stats[key]
        self._touch(name, version)
        return stats

    # -- per-model state lifecycle --------------------------------------
    def _drop_state_locked(self, name: str,
                           version: int | str) -> list[MicroBatcher]:
        """Forget one (model, version)'s serving state; returns the
        displaced batchers for the caller to close outside the lock."""
        self._loaded.pop((name, version), None)
        self._stats.pop(self._stats_key(name, version), None)
        self._state_lru.pop((name, version), None)
        doomed = []
        for key in [k for k in self._batchers
                    if k[0] == name and k[1] == version]:
            doomed.append(self._batchers.pop(key))
        return doomed

    def _touch(self, name: str, version: int | str) -> None:
        """Mark a (model, version) recently served and evict the
        least-recently-served state past ``max_model_state`` — tenants
        register models without bound; this cache must not grow with
        them."""
        doomed: list[MicroBatcher] = []
        with self._lock:
            self._state_lru[(name, version)] = None
            self._state_lru.move_to_end((name, version))
            while len(self._state_lru) > self.max_model_state:
                oldest = next(iter(self._state_lru))
                doomed += self._drop_state_locked(*oldest)
        for b in doomed:
            b.close()

    def evict_model_state(self, name: str,
                          version: int | str | None = None) -> int:
        """Drop cached artifacts / stats / batchers for ``name`` (one
        ``version``, or every version when omitted).  Returns how many
        (model, version) entries were evicted; state is rebuilt lazily
        if the model is served again."""
        doomed: list[MicroBatcher] = []
        with self._lock:
            targets = {
                (n, v)
                for source in (
                    self._loaded, self._state_lru,
                    [(n2, v2) for (n2, v2, _p) in self._batchers],
                    [self._split_stats_key(k) for k in self._stats],
                )
                for (n, v) in source
                if n == name and (version is None or v == version)
            }
            for n, v in targets:
                doomed += self._drop_state_locked(n, v)
        for b in doomed:
            b.close()
        return len(targets)

    @staticmethod
    def _split_stats_key(key: str) -> tuple[str, int | str]:
        if "@" not in key:
            return key, "-"
        name, _, version = key.rpartition("@")
        return name, (int(version) if version.isdigit() else version)

    def reconcile_model_state(self) -> int:
        """Evict serving state whose registry version is gone or
        quarantined (deleted models, rolled-back/corrupt versions) —
        the registry is the source of truth; this cache must follow it.
        Returns how many (model, version) entries were dropped."""
        if self.registry is None:
            return 0
        index = self.registry.index()
        evicted = 0
        with self._lock:
            known = set(self._state_lru) | set(self._loaded) | {
                (n, v) for (n, v, _p) in self._batchers
            } | {self._split_stats_key(k) for k in self._stats}
        for name, version in known:
            if name in self._fixed:
                continue
            entries = index.get(name, {}).get("versions", [])
            alive = any(
                e["version"] == version and not e.get("quarantined")
                for e in entries
            )
            if not alive:
                evicted += self.evict_model_state(name, version)
        return evicted

    def _batcher_for(self, name: str, version: int | str, proba: bool,
                     artifact: PipelineArtifact) -> MicroBatcher:
        key = (name, version, proba)
        with self._lock:
            batcher = self._batchers.get(key)
        if batcher is None:
            fn = artifact.predict_proba if proba else artifact.predict
            batcher = MicroBatcher(
                fn, max_batch=self.max_batch, max_delay_ms=self.max_delay_ms,
                stats=self._stats_for(name, version),
                max_queue=self.max_queue,
            )
            with self._lock:
                existing = self._batchers.setdefault(key, batcher)
            if existing is not batcher:
                batcher.close()
                batcher = existing
        return batcher

    # -- serving -------------------------------------------------------
    def queue_depth(self) -> int:
        """Rows waiting in micro-batcher queues right now (all models)."""
        with self._lock:
            batchers = list(self._batchers.values())
        return sum(b.queue_depth for b in batchers)

    def predict(self, name: str, rows, proba: bool = False,
                version: int | str = "latest",
                horizon: int | None = None,
                single: bool | None = None) -> dict:
        """Predict with admission control and a per-request deadline.

        The wrapper around :meth:`_predict_unguarded`: rejects when
        ``max_inflight`` predicts are already running
        (:class:`AdmissionRejected`), fails results that arrive after
        ``deadline_ms`` (:class:`DeadlineExceeded`), and consults the
        ``http.predict`` fault site (injected delay or error) so load
        shedding is testable on demand.
        """
        if (
            self._inflight_sem is not None
            and not self._inflight_sem.acquire(blocking=False)
        ):
            self._shed("inflight")
            raise AdmissionRejected(
                f"server is at its {self.max_inflight}-request in-flight "
                "limit; retry later"
            )
        deadline = (
            time.perf_counter() + self.deadline_ms / 1e3
            if self.deadline_ms else None
        )
        self._gauge_inflight.inc()
        try:
            rule = fault_hook("http.predict")
            if rule is not None:
                if rule.mode == "error":
                    raise FaultError("injected http.predict failure")
                time.sleep(rule.param if rule.param is not None else 0.05)
            try:
                result = self._predict_unguarded(
                    name, rows, proba=proba, version=version,
                    horizon=horizon, single=single,
                )
            except BatcherSaturated:
                self._shed("queue")
                raise
            if deadline is not None and time.perf_counter() > deadline:
                self._shed("deadline")
                raise DeadlineExceeded(
                    f"request exceeded its {self.deadline_ms:g} ms deadline"
                )
            return result
        finally:
            self._gauge_inflight.dec()
            if self._inflight_sem is not None:
                self._inflight_sem.release()

    def _predict_unguarded(self, name: str, rows, proba: bool = False,
                           version: int | str = "latest",
                           horizon: int | None = None,
                           single: bool | None = None) -> dict:
        """Predict ``rows`` (one row or a batch) with a served model.

        Forecast models interpret ``rows`` as the raw recent history of
        the series and answer with the next ``horizon`` values (default:
        the model's fitted horizon).  Histories are variable-length and
        one request yields a whole forecast, so they bypass the
        micro-batcher.

        ``single`` says whether the client explicitly sent one feature
        vector (the HTTP handler's ``'row'`` key): once coerced to an
        array, an explicitly *empty batch* (``rows: []``) and a 1-D row
        are otherwise indistinguishable — the empty batch answers
        ``predictions: []`` instead of being misread as one
        zero-feature row.
        """
        artifact, resolved = self._resolve(name, version)
        X = np.asarray(rows, dtype=np.float64)
        if artifact.task == "forecast":
            if proba:
                raise ValueError(
                    "proba is not defined for forecast models; request the "
                    "point forecast instead"
                )
            # the horizon is client-controlled and drives a recursive
            # predict loop: cap it, like max_batch caps batched rows
            if horizon is not None and not 1 <= horizon <= self.max_horizon:
                raise ValueError(
                    f"horizon must be in [1, {self.max_horizon}], got "
                    f"{horizon} (raise max_horizon at server start to "
                    "allow longer forecasts)"
                )
            stats = self._stats_for(name, resolved)
            t0 = time.perf_counter()
            try:
                predictions = artifact.predict(X, horizon=horizon)
            except Exception:
                stats.record_request(time.perf_counter() - t0, error=True)
                raise
            stats.record_batch(1)
            stats.record_request(time.perf_counter() - t0)
            return {
                "model": name,
                "version": resolved,
                "proba": False,
                "batched": False,
                "horizon": int(predictions.shape[0]),
                "n": int(predictions.shape[0]),
                "predictions": predictions.tolist(),
            }
        if horizon is not None:
            raise ValueError(
                f"model {name!r} is not a forecast model; 'horizon' does "
                "not apply"
            )
        if X.ndim >= 1 and X.shape[0] == 0 and not (single and X.ndim == 1):
            # a well-formed empty batch: nothing to predict (an *empty
            # single row* instead falls through to the feature check)
            return {
                "model": name,
                "version": resolved,
                "proba": bool(proba),
                "batched": False,
                "n": 0,
                "predictions": [],
            }
        one_row = X.ndim == 1 or (X.ndim == 2 and X.shape[0] == 1)
        if one_row and self.batching:
            row = X.reshape(-1)
            # reject malformed rows *before* they join a batch: inside
            # the batcher one bad row would fail the shared model call
            # and error out every coalesced request
            artifact.check_n_features(row.shape[0])
            out = self._batcher_for(name, resolved, proba, artifact) \
                      .submit(row)
            predictions = np.asarray(out).reshape(1, -1) if proba \
                else np.asarray([out])
            batched = True
        else:
            stats = self._stats_for(name, resolved)
            t0 = time.perf_counter()
            try:
                predictions = (artifact.predict_proba(X) if proba
                               else artifact.predict(X))
            except Exception:
                stats.record_request(time.perf_counter() - t0, error=True)
                raise
            stats.record_batch(int(np.atleast_2d(X).shape[0]))
            stats.record_request(time.perf_counter() - t0)
            batched = False
        return {
            "model": name,
            "version": resolved,
            "proba": bool(proba),
            "batched": batched,
            "n": int(np.asarray(predictions).shape[0]),
            "predictions": np.asarray(predictions).tolist(),
        }

    def model_index(self) -> dict:
        """What ``/models`` returns: registry index + fixed artifacts."""
        out = self.registry.index() if self.registry is not None else {}
        for name, art in self._fixed.items():
            out[name] = {"versions": [{"version": "-", **art.describe()}],
                         "aliases": {}}
        return out

    def served_names(self) -> list[str]:
        """Names this server can answer ``/predict`` for."""
        names = set(self._fixed)
        if self.registry is not None:
            names.update(self.registry.models())
        return sorted(names)

    def _metrics_items(self) -> tuple[list, list]:
        """Per-model stats split into (reported, aggregated): the
        ``max_metrics_models`` most recently active models get their own
        series; the long tail — unbounded under multi-tenant
        registration — is aggregated so label cardinality stays fixed."""
        with self._lock:
            items = list(self._stats.items())
        items.sort(key=lambda kv: kv[1].last_active, reverse=True)
        return items[: self.max_metrics_models], \
            items[self.max_metrics_models:]

    def metrics(self) -> dict:
        """Per-model counters + latency percentiles (most recently
        active ``max_metrics_models`` models; the rest roll up into
        ``"_other"``)."""
        reported, rest = self._metrics_items()
        out = {key: stats.snapshot() for key, stats in reported}
        if rest:
            out["_other"] = {
                "models": len(rest),
                "requests": sum(s.requests for _, s in rest),
                "batches": sum(s.batches for _, s in rest),
                "rows": sum(s.rows for _, s in rest),
                "errors": sum(s.errors for _, s in rest),
                "sheds": sum(s.sheds for _, s in rest),
            }
        return out

    def prometheus_metrics(self) -> str:
        """Prometheus text exposition: per-model serving series plus the
        process-wide :data:`~repro.obs.metrics.REGISTRY` (HTTP counters,
        native dispatch, plane caches, ...).  Per-model label
        cardinality is bounded at ``max_metrics_models``; less recently
        active models aggregate under ``model="_other"``."""
        reported, rest = self._metrics_items()
        items = list(reported)
        counters = {
            "repro_serving_requests_total": "Client requests served, "
                                            "per model.",
            "repro_serving_errors_total": "Requests that raised, per model.",
            "repro_serving_sheds_total": "Requests shed unpredicted, "
                                         "per model.",
            "repro_serving_batches_total": "Model invocations (batches), "
                                           "per model.",
            "repro_serving_rows_total": "Rows predicted, per model.",
        }
        serving: dict = {
            name: {"type": "counter", "help": help, "series": []}
            for name, help in counters.items()
        }
        serving["repro_serving_request_seconds"] = {
            "type": "histogram",
            "help": "End-to-end request latency, per model.",
            "series": [],
        }
        for key, stats in items:
            labels = {"model": key}
            for name, value in (
                ("repro_serving_requests_total", stats.requests),
                ("repro_serving_errors_total", stats.errors),
                ("repro_serving_sheds_total", stats.sheds),
                ("repro_serving_batches_total", stats.batches),
                ("repro_serving_rows_total", stats.rows),
            ):
                serving[name]["series"].append(
                    {"labels": labels, "value": int(value)}
                )
            serving["repro_serving_request_seconds"]["series"].append(
                {"labels": labels, **stats.latency_hist.state()}
            )
        if rest:
            labels = {"model": "_other"}
            for name, attr in (
                ("repro_serving_requests_total", "requests"),
                ("repro_serving_errors_total", "errors"),
                ("repro_serving_sheds_total", "sheds"),
                ("repro_serving_batches_total", "batches"),
                ("repro_serving_rows_total", "rows"),
            ):
                serving[name]["series"].append({
                    "labels": labels,
                    "value": sum(int(getattr(s, attr)) for _, s in rest),
                })
            states = [s.latency_hist.state() for _, s in rest]
            merged = {
                "buckets": states[0]["buckets"],
                "counts": [sum(c) for c in
                           zip(*(st["counts"] for st in states))],
                "sum": sum(st["sum"] for st in states),
                "count": sum(st["count"] for st in states),
            }
            serving["repro_serving_request_seconds"]["series"].append(
                {"labels": labels, **merged}
            )
        return render_prometheus(serving, REGISTRY.snapshot())

    def close(self) -> None:
        """Shut down every micro-batcher worker (and the fit service)."""
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for b in batchers:
            b.close()
        if self.fit_service is not None:
            self.fit_service.close()


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the owning :class:`ModelServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def model_server(self) -> ModelServer:
        return self.server.model_server  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test/CLI output clean; metrics carry the signal

    def _send(self, code: int, body: bytes, content_type: str,
              headers: dict | None = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        req_id = getattr(self, "_request_id", None)
        if req_id:
            self.send_header("X-Request-Id", req_id)
        for key, value in (headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(body)
        self._status = code

    def _reply(self, code: int, payload: dict,
               headers: dict | None = None) -> None:
        self._send(code, json.dumps(payload, default=float).encode(),
                   "application/json", headers=headers)

    # -- per-request observability -------------------------------------
    def _observed(self, method: str, handler) -> None:
        """Run one request handler with a request id, an ``http.request``
        span, per-endpoint counters/latency, and slow-request logging."""
        self._request_id = uuid.uuid4().hex[:16]
        self._status = 0
        path = urlparse(self.path).path
        if path in _KNOWN_ENDPOINTS:
            endpoint = path
        elif path.startswith("/fit/"):
            endpoint = "/fit"  # job ids must not become label values
        else:
            endpoint = "other"
        t0 = time.perf_counter()
        try:
            with trace_context(self._request_id):
                with trace_span("http.request", method=method,
                                endpoint=endpoint):
                    handler()
        finally:
            dur = time.perf_counter() - t0
            REGISTRY.counter(
                "repro_http_requests_total",
                "HTTP requests served, by endpoint and status code.",
                endpoint=endpoint, code=str(self._status),
            ).inc()
            REGISTRY.histogram(
                "repro_http_request_seconds",
                "HTTP request handling latency, by endpoint.",
                endpoint=endpoint,
            ).observe(dur)
            slow_ms = self.model_server.slow_request_ms
            if slow_ms and dur * 1e3 >= slow_ms:
                _log.warning(
                    "slow request: %s %s -> %s in %.1f ms (request_id=%s)",
                    method, path, self._status, dur * 1e3, self._request_id,
                )

    def _wants_prometheus(self) -> bool:
        query = parse_qs(urlparse(self.path).query)
        fmt = (query.get("format") or [""])[0].lower()
        if fmt:
            return fmt in ("prometheus", "text")
        accept = (self.headers.get("Accept") or "").lower()
        return "text/plain" in accept or "openmetrics" in accept

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._observed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._observed("POST", self._handle_post)

    def _fit_service(self):
        """The mounted fit service, or None after a 404 reply."""
        fs = self.model_server.fit_service
        if fs is None:
            self._reply(404, {"error": "fit service is not enabled; start "
                                       "the server with `serve --fit`"})
        return fs

    def _handle_get(self) -> None:
        path = urlparse(self.path).path
        srv = self.model_server
        if path == "/health":
            body = {
                "status": "ok",
                "models": srv.served_names(),
                "native": native_status(),
                # load-shedding visibility: how deep the predict queues
                # are and how many requests were refused, by reason
                "queue_depth": srv.queue_depth(),
                "inflight": srv._gauge_inflight.value,
                "sheds": dict(srv.shed_counts),
            }
            if srv.fit_service is not None:
                body["fit"] = srv.fit_service.stats()
            self._reply(200, body)
        elif path == "/models":
            self._reply(200, srv.model_index())
        elif path == "/metrics":
            if self._wants_prometheus():
                self._send(200, srv.prometheus_metrics().encode(),
                           PROMETHEUS_CONTENT_TYPE)
            else:  # default stays the backward-compatible JSON view
                self._reply(200, srv.metrics())
        elif path == "/fit":
            fs = self._fit_service()
            if fs is not None:
                query = parse_qs(urlparse(self.path).query)
                tenant = (query.get("tenant") or [None])[0]
                self._reply(200, {"jobs": fs.jobs(tenant=tenant)})
        elif path.startswith("/fit/"):
            fs = self._fit_service()
            if fs is not None:
                from .fitservice import UnknownJobError

                try:
                    self._reply(200, fs.status(path[len("/fit/"):]))
                except UnknownJobError as exc:
                    self._reply(404, {"error": str(exc)})
        else:
            self._reply(404, {"error": f"unknown endpoint {path!r}; have "
                                       "/predict /models /health /metrics "
                                       "/fit"})

    def _handle_post_fit(self, path: str) -> None:
        """POST ``/fit`` (submit) and ``/fit/<id>/cancel``."""
        fs = self._fit_service()
        if fs is None:
            return
        from .fitservice import FitServiceError, UnknownJobError

        if path != "/fit":
            job_id, _, verb = path[len("/fit/"):].rpartition("/")
            if verb != "cancel" or not job_id:
                self._reply(404, {"error": f"unknown endpoint {path!r}; "
                                           "POST /fit or /fit/<id>/cancel"})
                return
            try:
                self._reply(200, fs.cancel(job_id))
            except UnknownJobError as exc:
                self._reply(404, {"error": str(exc)})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            req = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"invalid JSON body: {exc}"})
            return
        missing = [k for k in ("tenant", "name", "X", "y") if k not in req]
        if missing:
            self._reply(400, {"error": "fit submission must carry "
                                       f"{missing} (tenant, name, X, y)"})
            return
        try:
            job = fs.submit(
                req["tenant"], req["name"], req["X"], req["y"],
                task=req.get("task"),
                time_budget=float(req.get("time_budget", 30.0)),
                max_iters=(None if req.get("max_iters") is None
                           else int(req["max_iters"])),
                seed=int(req.get("seed", 0)),
                estimators=req.get("estimators"),
                weight=int(req.get("weight", 1)),
                max_concurrent=(None if req.get("max_concurrent") is None
                                else int(req["max_concurrent"])),
            )
        except FitServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except (TypeError, ValueError) as exc:
            self._reply(400, {"error": str(exc)})
        else:
            # 202: accepted and queued, poll GET /fit/<job_id>
            self._reply(202, job.snapshot())

    def _handle_post(self) -> None:
        path = urlparse(self.path).path
        if path == "/fit" or path.startswith("/fit/"):
            self._handle_post_fit(path)
            return
        if path != "/predict":
            self._reply(404, {"error": f"unknown endpoint {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            req = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"invalid JSON body: {exc}"})
            return
        srv = self.model_server
        rows = req.get("rows", req.get("row", req.get("history")))
        if rows is None:
            self._reply(400, {"error": "body must carry 'row' (one feature "
                                       "vector), 'rows' (a batch), or "
                                       "'history' (a series to forecast "
                                       "from)"})
            return
        name = req.get("model")
        if name is None:
            served = srv.served_names()
            if len(served) != 1:
                self._reply(400, {"error": "'model' is required when more "
                                           f"than one model is served: {served}"})
                return
            name = served[0]
        try:
            horizon = req.get("horizon")
            result = srv.predict(
                name, rows,
                proba=bool(req.get("proba", False)),
                version=req.get("version", "latest"),
                horizon=None if horizon is None else int(horizon),
                single="row" in req and "rows" not in req,
            )
        except AdmissionRejected as exc:
            # too many concurrent predicts: shed with an explicit 429 so
            # well-behaved clients back off (Retry-After) instead of
            # stacking up behind a saturated server
            self._reply(429, {"error": str(exc)},
                        headers={"Retry-After": _RETRY_AFTER_S})
        except (BatcherSaturated, DeadlineExceeded) as exc:
            # the server accepted the request but cannot serve it in
            # time (full predict queue / expired deadline): 503, not a
            # hang and not a misleading 500
            self._reply(503, {"error": str(exc)},
                        headers={"Retry-After": _RETRY_AFTER_S})
        except RegistryError as exc:
            self._reply(404, {"error": str(exc)})
        except FaultError as exc:
            # injected server-side failure (chaos runs): a genuine 500
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        except (ValueError, TypeError, RuntimeError) as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, result)


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    # stdlib default backlog is 5: bursty clients that open a connection
    # per request (urllib does) get connection-reset under load
    request_queue_size = 128


def build_http_server(model_server: ModelServer, host: str = "127.0.0.1",
                      port: int = 0) -> ThreadingHTTPServer:
    """Bind a ``ThreadingHTTPServer`` for ``model_server``.

    ``port=0`` picks a free ephemeral port — read it back from
    ``server.server_address[1]`` (what the tests and the CI smoke job do).
    """
    httpd = _ThreadingServer((host, port), _Handler)
    httpd.model_server = model_server  # type: ignore[attr-defined]
    return httpd


def serve(model_server: ModelServer, host: str = "127.0.0.1",
          port: int = 8000) -> None:
    """Blocking convenience runner (the CLI's ``repro serve`` body)."""
    httpd = build_http_server(model_server, host, port)
    actual = httpd.server_address[1]
    print(f"serving {model_server.served_names()} on http://{host}:{actual}")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        httpd.server_close()
        model_server.close()
