"""Fit-as-a-service: multi-tenant AutoML searches over one shared pool.

The missing half of ROADMAP item 3's "AutoML for millions of users":
serving was already multi-model, but every ``fit`` still owned a
private worker pool.  A :class:`FitService` owns the training substrate
once — one :class:`~repro.exec.SharedWorkerPool`, one cross-search
:class:`~repro.exec.TrialCache`, one :class:`~repro.serve.registry.
ModelRegistry` — and runs each submitted search as a :class:`FitJob`
driven by a small driver thread whose trials multiplex the pool through
a per-search lease.

Tenancy is enforced here, not in the engine:

* **fair share** — each job's lease carries the tenant's weight, so
  the pool's weighted round-robin splits slots proportionally;
* **concurrency caps** — ``max_concurrent`` bounds one search's
  simultaneously running trials;
* **time budgets** — ``tenant_time_budget`` seconds of *trial compute*
  per tenant; a submission is refused (:class:`TenantBudgetExceeded`)
  once the tenant has consumed it, and a running job's effective
  ``time_budget`` never exceeds what the tenant has left;
* **per-tenant artifacts** — winners register as
  ``<tenant>.<name>`` so the registry's promote/alias/quarantine
  machinery works per tenant unchanged.

Searches stay individually deterministic: trials of one job commit in
launch order regardless of how the pool interleaves them with other
tenants' (see :mod:`repro.exec.multiplex`), and the shared trial cache
is dataset-fingerprint-scoped, so identical tenant datasets share
outcomes while different data never collides.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..exec import SharedWorkerPool, TrialCache
from ..obs.metrics import REGISTRY
from .registry import _NAME_RE, ModelRegistry

__all__ = [
    "FitJob",
    "FitService",
    "FitServiceError",
    "TenantBudgetExceeded",
    "UnknownJobError",
]

_log = logging.getLogger("repro.serve")

#: job lifecycle: queued -> running -> done | failed | cancelled
_TERMINAL = ("done", "failed", "cancelled")


class FitServiceError(ValueError):
    """Invalid submission (bad tenant/name/task/payload) — HTTP 400."""


class TenantBudgetExceeded(FitServiceError):
    """The tenant has consumed its time budget — refused, HTTP 400."""


class UnknownJobError(KeyError):
    """No job with that id — HTTP 404."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else "unknown job"


class FitJob:
    """One tenant's submitted search and its lifecycle state."""

    def __init__(self, job_id: str, tenant: str, name: str,
                 params: dict) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.name = name
        self.params = params  # the AutoML.fit arguments (sans data)
        self.status = "queued"
        self.submitted_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self.error: str | None = None
        self.result: dict | None = None
        self.version: int | None = None  # registry version of the winner
        self.trial_seconds = 0.0  # pool compute this job consumed
        self.stop_event = threading.Event()

    def snapshot(self) -> dict:
        """JSON-safe view (what ``GET /fit/<id>`` answers)."""
        out = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "name": self.name,
            "registered_name": f"{self.tenant}.{self.name}",
            "status": self.status,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "trial_seconds": round(self.trial_seconds, 3),
            "params": {k: v for k, v in self.params.items()
                       if k not in ("X", "y")},
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = self.result
        if self.version is not None:
            out["version"] = self.version
        return out


class FitService:
    """Accept, schedule, and account multi-tenant AutoML searches."""

    def __init__(self, registry: ModelRegistry | None = None,
                 n_workers: int = 4, max_searches: int = 4,
                 cache_size: int = 16384,
                 tenant_time_budget: float | None = None,
                 default_max_concurrent: int | None = None,
                 max_fit_rows: int = 200_000,
                 time_budget_cap: float = 300.0) -> None:
        """``n_workers`` sizes the one shared trial pool; up to
        ``max_searches`` searches are *in progress* at once (more queue
        behind the driver threads).  ``tenant_time_budget`` caps each
        tenant's cumulative trial compute in seconds (``None`` =
        unmetered); ``time_budget_cap`` bounds any single job's
        requested ``time_budget``; ``max_fit_rows`` bounds the training
        payload a tenant may submit."""
        if max_searches < 1:
            raise ValueError(f"max_searches must be >= 1, got {max_searches}")
        self.registry = registry
        self.pool = SharedWorkerPool(n_workers=n_workers)
        self.cache = TrialCache(maxsize=cache_size) if cache_size else None
        self.tenant_time_budget = tenant_time_budget
        self.default_max_concurrent = default_max_concurrent
        self.max_fit_rows = int(max_fit_rows)
        self.time_budget_cap = float(time_budget_cap)
        self.max_searches = int(max_searches)
        self._drivers = ThreadPoolExecutor(
            max_workers=self.max_searches,
            thread_name_prefix="repro-fit-driver",
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, FitJob] = {}
        self._tenant_used: dict[str, float] = {}
        self._closed = False

    # -- tenancy --------------------------------------------------------
    def tenant_remaining(self, tenant: str) -> float:
        """Seconds of trial compute the tenant has left (inf if
        unmetered)."""
        if self.tenant_time_budget is None:
            return float("inf")
        with self._lock:
            used = self._tenant_used.get(tenant, 0.0)
        return max(0.0, self.tenant_time_budget - used)

    def _charge(self, tenant: str, seconds: float) -> None:
        with self._lock:
            self._tenant_used[tenant] = (
                self._tenant_used.get(tenant, 0.0) + max(0.0, seconds)
            )
        REGISTRY.counter(
            "repro_tenant_budget_seconds_total",
            "Trial compute charged against tenant budgets (seconds).",
            tenant=tenant,
        ).inc(max(0.0, seconds))

    # -- submission -----------------------------------------------------
    def submit(self, tenant: str, name: str, X, y, task: str | None = None,
               time_budget: float = 30.0, max_iters: int | None = None,
               seed: int = 0, estimators: list[str] | None = None,
               weight: int = 1, max_concurrent: int | None = None,
               n_splits: int = 5, use_sampling: bool = True) -> FitJob:
        """Queue one search; returns the :class:`FitJob` immediately.

        The winner registers as ``<tenant>.<name>`` when the search
        finds one.  Raises :class:`FitServiceError` on an invalid
        submission and :class:`TenantBudgetExceeded` for a tenant with
        no budget left.
        """
        if self._closed:
            raise FitServiceError("fit service is shut down")
        for label, value in (("tenant", tenant), ("name", name)):
            if not isinstance(value, str) or not _NAME_RE.match(value) \
                    or "." in value:
                raise FitServiceError(
                    f"invalid {label} {value!r}: use letters, digits, '_', "
                    "'-' (no '.', which separates tenant from model name)"
                )
        try:
            X = np.asarray(X, dtype=np.float64)
            y = np.asarray(y)
        except (TypeError, ValueError) as exc:
            raise FitServiceError(f"invalid training payload: {exc}") from None
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] < 4:
            raise FitServiceError(
                "X must be 2-D with one label per row (and at least 4 "
                f"rows); got X {X.shape} / y {y.shape}"
            )
        if X.shape[0] > self.max_fit_rows:
            raise FitServiceError(
                f"training payload has {X.shape[0]} rows; this service "
                f"accepts at most {self.max_fit_rows} per fit"
            )
        if time_budget <= 0:
            raise FitServiceError(
                f"time_budget must be positive, got {time_budget}"
            )
        remaining = self.tenant_remaining(tenant)
        if remaining <= 0:
            raise TenantBudgetExceeded(
                f"tenant {tenant!r} has exhausted its "
                f"{self.tenant_time_budget:g}s compute budget"
            )
        effective_budget = min(
            float(time_budget), self.time_budget_cap, remaining
        )
        cap = max_concurrent if max_concurrent is not None \
            else self.default_max_concurrent
        job = FitJob(
            job_id=uuid.uuid4().hex[:16], tenant=tenant, name=name,
            params={
                "X": X, "y": y, "task": task,
                "time_budget": effective_budget,
                "max_iters": max_iters, "seed": int(seed),
                "estimators": list(estimators) if estimators else None,
                "weight": max(1, int(weight)),
                "max_concurrent": cap,
                "n_splits": int(n_splits),
                "use_sampling": bool(use_sampling),
            },
        )
        with self._lock:
            self._jobs[job.job_id] = job
        self._drivers.submit(self._run_job, job)
        return job

    # -- execution ------------------------------------------------------
    def _run_job(self, job: FitJob) -> None:
        from ..core.automl import AutoML

        if job.stop_event.is_set():  # cancelled while queued
            job.status = "cancelled"
            job.finished_unix = time.time()
            self._job_done(job)
            return
        job.status = "running"
        job.started_unix = time.time()
        p = job.params
        cap = p["max_concurrent"] or self.pool.n_workers
        holder: dict = {}

        def factory(data):
            lease = self.pool.lease(
                data, tenant=job.tenant, weight=p["weight"],
                max_concurrent=cap,
            )
            holder["lease"] = lease
            return lease

        try:
            automl = AutoML(seed=p["seed"])
            automl.fit(
                p["X"], p["y"], task=p["task"],
                time_budget=p["time_budget"], max_iters=p["max_iters"],
                estimator_list=p["estimators"], n_splits=p["n_splits"],
                use_sampling=p["use_sampling"], seed=p["seed"],
                n_workers=max(1, min(cap, self.pool.n_workers)),
                executor_factory=factory, trial_cache=(
                    self.cache if self.cache is not None else True
                ),
                stop_event=job.stop_event, tenant=job.tenant,
            )
        except Exception as exc:
            if job.stop_event.is_set():
                job.status = "cancelled"
            else:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                _log.warning("fit job %s (%s.%s) failed: %s", job.job_id,
                             job.tenant, job.name, job.error)
        else:
            result = automl.search_result
            job.result = {
                "best_learner": result.best_learner,
                "best_error": float(result.best_error),
                "n_trials": result.n_trials,
                "cache_hits": result.cache_hits,
                "backend": result.backend,
            }
            if job.stop_event.is_set():
                # a cancel that raced completion: keep the model out of
                # the registry, the tenant asked for it to stop
                job.status = "cancelled"
            else:
                try:
                    if self.registry is not None:
                        job.version = self.registry.register(
                            f"{job.tenant}.{job.name}",
                            automl.export_artifact(),
                            metadata={"tenant": job.tenant,
                                      "job_id": job.job_id,
                                      "display_name": job.name},
                        )
                    job.status = "done"
                except Exception as exc:  # registry write failed
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
        finally:
            lease = holder.get("lease")
            if lease is not None:
                lease.shutdown()  # idempotent; engine may have degraded
                job.trial_seconds = lease.trial_seconds
            elif job.started_unix is not None:
                job.trial_seconds = time.time() - job.started_unix
            job.finished_unix = time.time()
            self._charge(job.tenant, job.trial_seconds)
            self._job_done(job)

    def _job_done(self, job: FitJob) -> None:
        REGISTRY.counter(
            "repro_tenant_searches_total",
            "Fit-service searches finished, per tenant and outcome.",
            tenant=job.tenant, status=job.status,
        ).inc()

    # -- queries / control ----------------------------------------------
    def _get(self, job_id: str) -> FitJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown fit job {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Snapshot of one job (raises :class:`UnknownJobError`)."""
        return self._get(job_id).snapshot()

    def jobs(self, tenant: str | None = None) -> list[dict]:
        """Snapshots of all jobs (optionally one tenant's), newest last."""
        with self._lock:
            jobs = list(self._jobs.values())
        return [
            j.snapshot() for j in jobs
            if tenant is None or j.tenant == tenant
        ]

    def cancel(self, job_id: str) -> dict:
        """Request cooperative cancellation; the search stops between
        trials (already-terminal jobs are unaffected)."""
        job = self._get(job_id)
        if job.status not in _TERMINAL:
            job.stop_event.set()
        return job.snapshot()

    def stats(self) -> dict:
        """Service-level view for ``/health``: job counts by status,
        pool utilisation, per-tenant budget consumption."""
        with self._lock:
            jobs = list(self._jobs.values())
            used = dict(self._tenant_used)
        counts: dict[str, int] = {}
        for j in jobs:
            counts[j.status] = counts.get(j.status, 0) + 1
        return {
            "jobs": counts,
            "pool": self.pool.stats(),
            "tenant_time_budget": self.tenant_time_budget,
            "tenants": {
                t: {
                    "used_s": round(s, 3),
                    "remaining_s": (
                        None if self.tenant_time_budget is None
                        else round(max(0.0, self.tenant_time_budget - s), 3)
                    ),
                }
                for t, s in sorted(used.items())
            },
            "cache": (
                None if self.cache is None
                else {"entries": len(self.cache), "hits": self.cache.hits,
                      "misses": self.cache.misses}
            ),
        }

    def close(self) -> None:
        """Cancel outstanding jobs, drain drivers, stop the pool."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.status not in _TERMINAL:
                job.stop_event.set()
        self._drivers.shutdown(wait=True)
        self.pool.shutdown()

    def __enter__(self) -> "FitService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
