"""Minimal HTTP client for the prediction server (urllib only).

Mirrors the server's endpoints one method each, decoding JSON and
raising :class:`ServeClientError` with the server's error message on
non-2xx responses.  Used by the examples, the serving benchmark, and
the CI smoke job; third parties can POST the same JSON with anything.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A non-2xx response; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talk to a ``repro serve`` server at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ServeClientError(exc.code, message) from None

    # -- endpoints -----------------------------------------------------
    def predict(self, rows, model: str | None = None, proba: bool = False,
                version: int | str = "latest") -> np.ndarray:
        """POST rows to ``/predict``; returns predictions as an array."""
        rows = np.asarray(rows, dtype=np.float64)
        payload: dict = {"proba": bool(proba), "version": version}
        if model is not None:
            payload["model"] = model
        if rows.ndim == 1:
            payload["row"] = rows.tolist()
        else:
            payload["rows"] = rows.tolist()
        out = np.asarray(self._request("/predict", payload)["predictions"])
        if rows.ndim == 1:
            return out[0]
        return out

    def forecast(self, history, horizon: int | None = None,
                 model: str | None = None,
                 version: int | str = "latest") -> np.ndarray:
        """POST a raw series history to ``/predict``; returns the next
        ``horizon`` values (server default: the model's fitted horizon)."""
        payload: dict = {
            "history": np.asarray(history, dtype=np.float64).ravel().tolist(),
            "version": version,
        }
        if horizon is not None:
            payload["horizon"] = int(horizon)
        if model is not None:
            payload["model"] = model
        return np.asarray(self._request("/predict", payload)["predictions"])

    # -- fit-as-a-service ----------------------------------------------
    def submit_fit(self, tenant: str, name: str, X, y,
                   task: str | None = None, time_budget: float = 30.0,
                   max_iters: int | None = None, seed: int = 0,
                   estimators: list[str] | None = None,
                   weight: int = 1,
                   max_concurrent: int | None = None) -> dict:
        """POST a training payload to ``/fit``; returns the queued job's
        snapshot (poll ``fit_status(job['job_id'])``).  The winner will
        register as ``<tenant>.<name>``."""
        payload: dict = {
            "tenant": tenant,
            "name": name,
            "X": np.asarray(X, dtype=np.float64).tolist(),
            "y": np.asarray(y).tolist(),
            "time_budget": float(time_budget),
            "seed": int(seed),
            "weight": int(weight),
        }
        if task is not None:
            payload["task"] = task
        if max_iters is not None:
            payload["max_iters"] = int(max_iters)
        if estimators is not None:
            payload["estimators"] = list(estimators)
        if max_concurrent is not None:
            payload["max_concurrent"] = int(max_concurrent)
        return self._request("/fit", payload)

    def fit_status(self, job_id: str) -> dict:
        """GET ``/fit/<job_id>`` — one job's snapshot."""
        return self._request(f"/fit/{job_id}")

    def fit_jobs(self, tenant: str | None = None) -> list[dict]:
        """GET ``/fit`` — all jobs (optionally one tenant's)."""
        path = "/fit" if tenant is None else f"/fit?tenant={tenant}"
        return self._request(path)["jobs"]

    def cancel_fit(self, job_id: str) -> dict:
        """POST ``/fit/<job_id>/cancel`` — request cooperative stop."""
        return self._request(f"/fit/{job_id}/cancel", {})

    def wait_fit(self, job_id: str, timeout: float = 120.0,
                 poll: float = 0.25) -> dict:
        """Poll ``/fit/<job_id>`` until the job reaches a terminal
        status; returns the final snapshot or raises on timeout."""
        import time as _time

        deadline = _time.monotonic() + float(timeout)
        while True:
            status = self.fit_status(job_id)
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            if _time.monotonic() > deadline:
                raise TimeoutError(
                    f"fit job {job_id} still {status['status']!r} after "
                    f"{timeout:g}s"
                )
            _time.sleep(poll)

    def models(self) -> dict:
        """GET ``/models`` — registry index."""
        return self._request("/models")

    def health(self) -> dict:
        """GET ``/health`` — liveness + served model names."""
        return self._request("/health")

    def metrics(self) -> dict:
        """GET ``/metrics`` — per-model serving statistics."""
        return self._request("/metrics")
