"""File-backed versioned model registry.

Deployments need more than a model file: they need *names* ("the churn
model"), monotonically increasing *versions* of each name, movable
*aliases* ("latest", "production") so traffic can be repointed without
touching clients, and an integrity check so a corrupted or hand-edited
artifact is refused rather than silently served.

Layout on disk (everything human-inspectable JSON)::

    <root>/
      <name>/
        manifest.json          # versions, aliases, alias history, hashes
        v1/artifact.json
        v2/artifact.json

Manifests are written atomically (tmp file + ``os.replace``) and cached
by mtime (alias resolution sits on the serving hot path); writers —
register/promote/rollback — serialise on a per-model ``.lock`` file so
concurrent registrations from separate processes get distinct versions,
and each version directory is claimed with ``exist_ok=False`` so an
artifact file can never be overwritten.  Each artifact's SHA-256 is
recorded and re-verified on every load.

A version whose artifact fails that integrity check (or whose file has
vanished) is **quarantined**: the manifest marks it so it is never
served again, and an alias that pointed at it automatically falls back
along its promotion history to the newest non-quarantined version — a
corrupted production artifact degrades to the previous good one with a
loud log line instead of turning every request into a 500.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import re
import threading
import time

try:  # advisory file locking; absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - windows fallback
    fcntl = None

from ..faults import fault_hook
from ..obs.metrics import REGISTRY
from .artifact import PipelineArtifact

__all__ = ["ModelRegistry", "RegistryError"]

_log = logging.getLogger("repro.serve")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: ``latest`` always tracks the newest version and cannot be promoted
#: or rolled back by hand
_RESERVED_ALIASES = ("latest",)


class RegistryError(RuntimeError):
    """Raised for unknown names/versions, bad aliases, or corrupt files."""


class ModelRegistry:
    """Named, versioned, alias-addressable store of pipeline artifacts."""

    #: how long a writer waits for another process's lock before failing
    LOCK_TIMEOUT_S = 10.0

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self._cache_lock = threading.Lock()
        # manifest cache keyed by name -> (mtime_ns, manifest); the hot
        # serving path resolves aliases per request, which must not cost
        # a disk read + JSON parse each time
        self._manifest_cache: dict[str, tuple[int, dict]] = {}

    # -- manifest plumbing ---------------------------------------------
    def _dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _manifest_path(self, name: str) -> str:
        return os.path.join(self._dir(name), "manifest.json")

    def _load_manifest(self, name: str) -> dict:
        path = self._manifest_path(name)
        try:
            mtime = os.stat(path).st_mtime_ns
        except FileNotFoundError:
            raise RegistryError(
                f"unknown model {name!r}; registered models: {self.models()}"
            ) from None
        with self._cache_lock:
            cached = self._manifest_cache.get(name)
        if cached is not None and cached[0] == mtime:
            return json.loads(json.dumps(cached[1]))  # callers may mutate
        try:
            with open(path) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            raise RegistryError(
                f"unknown model {name!r}; registered models: {self.models()}"
            ) from None
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"manifest for {name!r} is corrupt: {exc}"
            ) from None
        with self._cache_lock:
            self._manifest_cache[name] = (mtime, manifest)
        return json.loads(json.dumps(manifest))

    def _save_manifest(self, name: str, manifest: dict) -> None:
        path = self._manifest_path(name)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=1)
        os.replace(tmp, path)
        with self._cache_lock:
            self._manifest_cache.pop(name, None)

    @contextlib.contextmanager
    def _write_lock(self, name: str):
        """Cross-process mutex for manifest writers (register/promote/
        rollback): an advisory ``flock`` on a per-model ``.lock`` file.

        ``flock`` is released by the kernel when the holder's fd closes
        — including when the holding process is SIGKILLed mid-write — so
        a crashed writer can never wedge the registry the way the old
        O_EXCL lockfile scheme did (its stale file blocked every writer
        until the timeout, then demanded manual removal).  The lock file
        itself is persistent and never deleted: unlinking a path other
        processes may be about to ``open`` reintroduces exactly the race
        the lock exists to prevent.  Locks are per-open-fd, so threads
        of one process serialise through it too.
        """
        os.makedirs(self._dir(name), exist_ok=True)
        lock_path = os.path.join(self._dir(name), ".lock")
        deadline = time.monotonic() + self.LOCK_TIMEOUT_S
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() > deadline:
                            raise RegistryError(
                                f"timed out waiting for the write lock on "
                                f"{name!r} ({lock_path}); another writer is "
                                "holding it"
                            ) from None
                        time.sleep(0.02)
            # the owner pid is informational (debugging), not the lock
            with contextlib.suppress(OSError):
                os.ftruncate(fd, 0)
                os.write(fd, str(os.getpid()).encode())
            yield
        finally:
            if fcntl is not None:
                with contextlib.suppress(OSError):
                    fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- write side ----------------------------------------------------
    def register(self, name: str, artifact: PipelineArtifact,
                 metadata: dict | None = None) -> int:
        """Store ``artifact`` as the next version of ``name``.

        Returns the new version number; the ``latest`` alias always
        moves to it.
        """
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}; use letters, digits, "
                "'.', '_', '-'"
            )
        with self._write_lock(name):
            try:
                manifest = self._load_manifest(name)
            except RegistryError:
                manifest = {"name": name, "versions": [], "aliases": {},
                            "alias_history": {}}
            version = 1 + max(
                (v["version"] for v in manifest["versions"]), default=0
            )
            rel = os.path.join(f"v{version}", "artifact.json")
            # exist_ok=False: a version directory is claimed exactly once,
            # so even a racing writer that slipped past the lock could
            # never overwrite an already-registered artifact
            os.makedirs(os.path.join(self._dir(name), f"v{version}"),
                        exist_ok=False)
            payload = json.dumps(artifact.to_dict()).encode()
            with open(os.path.join(self._dir(name), rel), "wb") as f:
                f.write(payload)
            manifest["versions"].append({
                "version": version,
                "path": rel,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "created_unix": time.time(),
                "task": artifact.task,
                "metadata": dict(metadata or {}),
            })
            # "latest" moves automatically, but its trail is recorded
            # like any promoted alias so integrity fallback can walk it
            prev = manifest["aliases"].get("latest")
            if prev is not None:
                manifest.setdefault("alias_history", {}) \
                        .setdefault("latest", []).append(prev)
            manifest["aliases"]["latest"] = version
            self._save_manifest(name, manifest)
        return version

    def promote(self, name: str, version: int, stage: str) -> None:
        """Point the ``stage`` alias (e.g. 'production') at ``version``.

        The alias's previous target is pushed onto its history so
        :meth:`rollback` can undo the promotion.
        """
        if stage in _RESERVED_ALIASES:
            raise RegistryError(f"alias {stage!r} is managed automatically")
        if not _NAME_RE.match(stage) or str(stage).isdigit():
            raise RegistryError(f"invalid stage alias {stage!r}")
        with self._write_lock(name):
            manifest = self._load_manifest(name)
            self._entry(manifest, version)  # validates the target exists
            prev = manifest["aliases"].get(stage)
            if prev is not None:
                manifest.setdefault("alias_history", {}) \
                        .setdefault(stage, []).append(prev)
            manifest["aliases"][stage] = int(version)
            self._save_manifest(name, manifest)

    def rollback(self, name: str, stage: str) -> int:
        """Undo the last :meth:`promote` of ``stage``; returns the
        version the alias now points at."""
        with self._write_lock(name):
            manifest = self._load_manifest(name)
            if stage not in manifest["aliases"]:
                raise RegistryError(
                    f"model {name!r} has no alias {stage!r} to roll back"
                )
            history = manifest.get("alias_history", {}).get(stage, [])
            if not history:
                raise RegistryError(
                    f"alias {stage!r} of {name!r} has no earlier version to "
                    "roll back to"
                )
            version = history.pop()
            manifest["aliases"][stage] = version
            self._save_manifest(name, manifest)
        return version

    # -- read side -----------------------------------------------------
    @staticmethod
    def _entry(manifest: dict, version: int) -> dict:
        for v in manifest["versions"]:
            if v["version"] == int(version):
                return v
        known = [v["version"] for v in manifest["versions"]]
        raise RegistryError(
            f"model {manifest['name']!r} has no version {version}; "
            f"known versions: {known}"
        )

    def resolve(self, name: str, version: int | str = "latest") -> int:
        """Resolve a version number or alias to a concrete version."""
        manifest = self._load_manifest(name)
        if isinstance(version, str) and not version.isdigit():
            if version not in manifest["aliases"]:
                raise RegistryError(
                    f"model {name!r} has no alias {version!r}; aliases: "
                    f"{sorted(manifest['aliases'])}"
                )
            return int(manifest["aliases"][version])
        return self._entry(manifest, int(version))["version"]

    def quarantine(self, name: str, version: int, reason: str) -> None:
        """Mark ``version`` as never-serve-again in the manifest.

        Idempotent; called automatically when an integrity check fails,
        so the bad artifact is refused by *every* future reader (even
        ones that have not re-hashed it) and alias fallback skips it.
        """
        with self._write_lock(name):
            manifest = self._load_manifest(name)
            entry = self._entry(manifest, version)
            if entry.get("quarantined"):
                return
            entry["quarantined"] = str(reason)
            self._save_manifest(name, manifest)
        _log.error(
            "quarantined %r v%d: %s", name, int(version), reason
        )
        REGISTRY.counter(
            "repro_registry_quarantined_total",
            "Registry versions quarantined after a failed integrity check.",
            model=name,
        ).inc()

    def _load_verified(self, name: str, entry: dict) -> PipelineArtifact:
        """Read + hash-verify one version's artifact; a mismatch (or a
        vanished file, or an injected ``registry.read`` fault)
        quarantines the version before raising."""
        version = int(entry["version"])
        path = os.path.join(self._dir(name), entry["path"])
        try:
            with open(path, "rb") as f:
                payload = f.read()
        except FileNotFoundError:
            self.quarantine(name, version, f"artifact file missing ({path})")
            raise RegistryError(
                f"artifact file for {name!r} v{version} is missing ({path})"
            ) from None
        digest = hashlib.sha256(payload).hexdigest()
        if fault_hook("registry.read", key=(name, version)) is not None:
            digest = "0" * 64  # injected corruption: force the mismatch
        if digest != entry["sha256"]:
            reason = (
                f"manifest records sha256 {entry['sha256'][:12]}… but the "
                f"file hashes to {digest[:12]}…"
            )
            self.quarantine(name, version, reason)
            raise RegistryError(
                f"integrity check failed for {name!r} v{version}: {reason}"
            )
        return PipelineArtifact.from_dict(json.loads(payload))

    def get(self, name: str, version: int | str = "latest") -> PipelineArtifact:
        """Load one artifact, verifying its recorded SHA-256 first.

        A version that fails verification is quarantined; when
        ``version`` is an *alias*, the lookup then falls back along the
        alias's promotion history (newest first, quarantined versions
        skipped) so a corrupted artifact degrades to the previous good
        one instead of failing the request.  A concrete version number
        has no fallback — corruption raises.
        """
        manifest = self._load_manifest(name)
        resolved = self.resolve(name, version)
        candidates = [resolved]
        if isinstance(version, str) and not version.isdigit():
            history = manifest.get("alias_history", {}).get(version, [])
            candidates += [int(v) for v in reversed(history)]
        failures: list[str] = []
        for v in candidates:
            entry = self._entry(manifest, v)
            if entry.get("quarantined"):
                failures.append(
                    f"v{v} quarantined: {entry['quarantined']}"
                )
                continue
            try:
                artifact = self._load_verified(name, entry)
            except RegistryError as exc:
                failures.append(str(exc))
                continue
            if v != resolved:
                _log.error(
                    "serving %r %s=%d from fallback v%d (%s)",
                    name, version, resolved, v, "; ".join(failures),
                )
                REGISTRY.counter(
                    "repro_registry_fallback_total",
                    "Alias reads served by an older version after the "
                    "resolved one was quarantined.",
                    model=name,
                ).inc()
            return artifact
        raise RegistryError(
            f"no servable artifact for {name!r} {version!r}: "
            + "; ".join(failures)
        )

    def models(self) -> list[str]:
        """Sorted names of every registered model."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            n for n in names
            if os.path.isfile(self._manifest_path(n))
        )

    def versions(self, name: str) -> list[dict]:
        """Version entries (number, hash, creation time, metadata)."""
        return [dict(v) for v in self._load_manifest(name)["versions"]]

    def aliases(self, name: str) -> dict[str, int]:
        """Current alias -> version mapping for ``name``."""
        return dict(self._load_manifest(name)["aliases"])

    def index(self) -> dict:
        """Registry-wide summary (what the server's ``/models`` returns)."""
        out = {}
        for name in self.models():
            manifest = self._load_manifest(name)
            out[name] = {
                "versions": [
                    {k: v[k] for k in
                     ("version", "created_unix", "task", "metadata",
                      "quarantined") if k in v}
                    for v in manifest["versions"]
                ],
                "aliases": manifest["aliases"],
            }
        return out
