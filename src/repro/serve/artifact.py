"""Self-contained pipeline artifacts: the unit of deployment.

``AutoML.fit`` produces two things a deployment needs — a fitted
preprocessor chain and a fitted model — plus metadata that operators
need (task, metric, feature count, a fingerprint of the data it was
trained on).  A :class:`PipelineArtifact` bundles all of it into one
JSON document, so the object that crosses the train/serve boundary is a
*pipeline*, not a bare estimator: ``predict`` accepts raw,
un-preprocessed rows and applies the embedded featurization first.

Artifacts are what the :class:`~repro.serve.registry.ModelRegistry`
versions and what the prediction server loads; they contain no pickled
code (everything routes through :mod:`repro.learners.model_io` and
:func:`repro.data.preprocessing.dump_preprocessor`).
"""

from __future__ import annotations

import json
import time

import numpy as np

from ..data.preprocessing import dump_preprocessor, load_preprocessor
from ..learners.model_io import dump_model, load_model

__all__ = ["PipelineArtifact", "export_artifact", "ARTIFACT_FORMAT"]

#: top-level ``format`` marker distinguishing artifacts from the legacy
#: bare-estimator dumps of model_io (which carry ``kind`` instead)
ARTIFACT_FORMAT = "repro.pipeline"
_ARTIFACT_VERSION = 1


def _warm_model(model) -> None:
    """Recursively pre-build packed inference arrays on a model tree.

    Tree learners expose ``warm_inference()`` (build the flattened
    ensembles their predict kernels traverse); stacked ensembles and
    forecast wrappers are walked into so every constituent gets warmed.
    Duck-typed: models without the hook are left alone.
    """
    warm = getattr(model, "warm_inference", None)
    if callable(warm):
        warm()
    for sub in getattr(model, "base_models", None) or ():
        _warm_model(sub)
    for attr in ("meta_model", "base"):
        sub = getattr(model, attr, None)
        if sub is not None:
            _warm_model(sub)


class PipelineArtifact:
    """A deployable prediction pipeline: preprocessors + model + metadata.

    ``predict``/``predict_proba`` accept raw rows — a single feature
    vector, a list of rows, or a 2-D array — exactly as a client would
    POST them, and run them through the embedded preprocessor chain
    before the model.
    """

    def __init__(self, model, preprocessors: list | None = None,
                 task: str = "binary", metadata: dict | None = None) -> None:
        self.model = model
        self.preprocessors = list(preprocessors or [])
        self.task = task
        self.metadata = dict(metadata or {})

    # -- prediction ----------------------------------------------------
    def check_n_features(self, n_cols: int) -> None:
        """Raise if ``n_cols`` differs from the trained raw feature count.

        The server calls this *before* enqueueing a row into the
        micro-batcher, so one malformed request cannot poison the model
        call shared by a whole coalesced batch.
        """
        expected = self.metadata.get("n_features_in")
        if expected is not None and n_cols != expected:
            raise ValueError(
                f"this pipeline was trained on {expected} raw features but "
                f"received rows with {n_cols}; send un-preprocessed "
                "feature vectors in the training column order"
            )

    def _prepare(self, rows) -> np.ndarray:
        X = np.asarray(rows, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.ndim != 2:
            raise ValueError(
                f"rows must be a feature vector or a 2-D batch, got shape "
                f"{X.shape}"
            )
        self.check_n_features(X.shape[1])
        for step in self.preprocessors:
            X = step.transform(X)
        return X

    def predict(self, rows, horizon: int | None = None) -> np.ndarray:
        """Predict labels/values for raw (un-preprocessed) rows.

        For a ``task="forecast"`` artifact, ``rows`` is the recent raw
        *history* of the series (any length >= the model's lag context)
        and the result is the next ``horizon`` values (default: the
        horizon the model was fitted for).
        """
        if self.task == "forecast":
            return self.model.predict(
                np.asarray(rows, dtype=np.float64).ravel(), horizon=horizon
            )
        if horizon is not None:
            raise ValueError(
                "horizon only applies to forecast artifacts, but this "
                f"pipeline was trained with task={self.task!r}"
            )
        return self.model.predict(self._prepare(rows))

    def predict_proba(self, rows) -> np.ndarray:
        """Class probabilities for raw rows (classification only)."""
        if self.task in ("regression", "forecast"):
            raise RuntimeError(
                "predict_proba is only defined for classification, but this "
                f"pipeline was trained with task={self.task!r}; use "
                "predict() for point estimates"
            )
        return self.model.predict_proba(self._prepare(rows))

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the whole pipeline to a JSON-safe dict."""
        return {
            "format": ARTIFACT_FORMAT,
            "format_version": _ARTIFACT_VERSION,
            "task": self.task,
            "metadata": self.metadata,
            "preprocessors": [dump_preprocessor(p) for p in self.preprocessors],
            "model": dump_model(self.model),
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "PipelineArtifact":
        """Reconstruct an artifact serialised by :meth:`to_dict`."""
        if obj.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                "not a pipeline artifact (missing "
                f"format={ARTIFACT_FORMAT!r} marker)"
            )
        version = obj.get("format_version")
        if version != _ARTIFACT_VERSION:
            raise ValueError(f"unsupported artifact version {version!r}")
        return cls(
            model=load_model(obj["model"]),
            preprocessors=[load_preprocessor(p) for p in obj["preprocessors"]],
            task=obj["task"],
            metadata=dict(obj.get("metadata", {})),
        ).warm()

    def warm(self) -> "PipelineArtifact":
        """Pre-build the model's packed inference arrays (flattened tree
        ensembles) so the first request doesn't pay the packing cost;
        returns self.  Called automatically on deserialisation."""
        _warm_model(self.model)
        return self

    def save(self, path: str) -> None:
        """Write the artifact as a JSON file."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)

    @classmethod
    def load(cls, path: str) -> "PipelineArtifact":
        """Load an artifact written by :meth:`save`."""
        with open(path) as f:
            return cls.from_dict(json.load(f))

    # -- introspection -------------------------------------------------
    @property
    def learner(self) -> str | None:
        """Name of the learner that won the search (if recorded)."""
        return self.metadata.get("learner")

    def describe(self) -> dict:
        """Operator-facing summary (what ``/models`` reports per version)."""
        return {
            "task": self.task,
            "model_class": type(self.model).__name__,
            "n_preprocessors": len(self.preprocessors),
            **{k: self.metadata[k]
               for k in ("learner", "metric", "n_features_in", "best_error",
                         "created_unix", "horizon", "seasonal_period",
                         "lag_config")
               if k in self.metadata},
        }


def export_artifact(automl, metadata: dict | None = None) -> PipelineArtifact:
    """Bundle a fitted :class:`~repro.core.automl.AutoML` into an artifact.

    Captures the fitted preprocessor chain, the final model (single
    estimator or stacked ensemble), and search metadata: winning learner
    and config, metric, validation error, raw feature count, and the
    training-data fingerprint recorded during ``fit``.  User ``metadata``
    keys win over the derived ones.
    """
    automl._require_fitted()
    result = automl.search_result
    meta = {
        "created_unix": time.time(),
        "task": automl._task,
        "learner": result.best_learner,
        "config": dict(result.best_config),
        "metric": automl._metric.name,
        "best_error": float(result.best_error),
        "n_features_in": getattr(automl, "_n_features_in", None),
        "dataset_fingerprint": getattr(automl, "_data_fingerprint", None),
        "is_ensemble": type(automl._model).__name__ == "StackedEnsemble",
    }
    if automl._task == "forecast":
        meta["horizon"] = int(getattr(automl, "_horizon", 1))
        meta["seasonal_period"] = getattr(automl, "_seasonal_period", None)
        meta["lag_config"] = automl._model.featurizer.to_dict()
    meta.update(metadata or {})
    return PipelineArtifact(
        model=automl._model,
        preprocessors=list(getattr(automl, "_preprocessor", [])),
        task=automl._task,
        metadata=meta,
    )
