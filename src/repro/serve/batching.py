"""Micro-batching: coalesce concurrent single-row predicts into batches.

The learners are vectorised numpy code, so predicting one row costs
almost as much as predicting thirty-two — per-call overhead (binning,
array setup, tree traversal dispatch) dominates at batch size 1.  Under
concurrent single-row traffic, a :class:`MicroBatcher` therefore holds
each request while other requests arrive, stacks up to ``max_batch``
rows, runs **one** model call, and fans the rows of the result back out
to the callers.  Two knobs bound the wait: ``max_delay_ms`` caps the
total coalescing window, and ``idle_gap_ms`` (default: an eighth of the
window) closes the batch early once arrivals pause — closed-loop
clients stop submitting until their batch returns, so sleeping out the
full window would add latency without ever growing the batch.
Throughput approaches the batched-predict rate.

:class:`ServingStats` tracks the counters operators actually watch:
request/batch/row counts, mean batch size, and p50/p95/p99 request
latency over a sliding sample window — exposed per model by the
server's ``/metrics`` endpoint.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque

import numpy as np

from ..obs.metrics import Histogram

__all__ = ["BatcherSaturated", "MicroBatcher", "ServingStats"]


class BatcherSaturated(RuntimeError):
    """The batcher's queue is at capacity: the server is accepting rows
    faster than the model drains them.  Raised by :meth:`
    MicroBatcher.submit` *instead of* queueing unboundedly — the HTTP
    layer turns it into ``503 Retry-After`` (load shedding) rather than
    letting every client hang behind an ever-growing queue."""

#: request-latency buckets (seconds) tuned for sub-ms..seconds serving
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
)


class ServingStats:
    """Thread-safe latency/throughput counters for one served model."""

    def __init__(self, max_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=int(max_samples))
        self.requests = 0
        self.batches = 0
        self.rows = 0
        self.errors = 0
        #: requests refused outright (saturated queue, admission-control
        #: rejections, expired deadlines) — load shed, never predicted
        self.sheds = 0
        #: bucketed request latency for Prometheus exposition (the JSON
        #: snapshot keeps its sliding-window percentiles unchanged)
        self.latency_hist = Histogram(_LATENCY_BUCKETS)
        self._t_first: float | None = None
        #: monotonic timestamp of the last recorded activity — the
        #: server's recency order for bounding /metrics cardinality and
        #: evicting idle per-model state
        self.last_active = time.monotonic()

    def record_batch(self, n_rows: int) -> None:
        """Count one model invocation covering ``n_rows`` rows."""
        with self._lock:
            self.batches += 1
            self.rows += n_rows
            self.last_active = time.monotonic()

    def record_shed(self) -> None:
        """Count one request refused without running the model."""
        with self._lock:
            self.sheds += 1
            self.last_active = time.monotonic()

    def record_request(self, latency_s: float, error: bool = False) -> None:
        """Count one client request and its end-to-end latency."""
        now = time.perf_counter()
        self.latency_hist.observe(latency_s)
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            self._latencies.append(latency_s)
            self.last_active = time.monotonic()
            if self._t_first is None:
                self._t_first = now

    def snapshot(self) -> dict:
        """Current counters + latency percentiles, JSON-safe.

        Throughput is requests over the wall-clock span from the first
        request to *now* (not to the last request: that span is zero
        with a single request, which used to report an absurd
        ``throughput_rps = 0.0`` until a second request arrived).
        """
        now = time.perf_counter()
        with self._lock:
            lat = np.asarray(self._latencies, dtype=np.float64)
            requests, batches, rows = self.requests, self.batches, self.rows
            errors, sheds = self.errors, self.sheds
            span = (
                (now - self._t_first)
                if self._t_first is not None else 0.0
            )
        out = {
            "requests": requests,
            "batches": batches,
            "rows": rows,
            "errors": errors,
            "sheds": sheds,
            "mean_batch_size": (rows / batches) if batches else 0.0,
            "throughput_rps": (requests / span) if span > 0 else 0.0,
        }
        if lat.size:
            p50, p95, p99 = np.percentile(lat, [50, 95, 99])
            out.update(
                latency_ms_p50=1e3 * float(p50),
                latency_ms_p95=1e3 * float(p95),
                latency_ms_p99=1e3 * float(p99),
                latency_ms_mean=1e3 * float(lat.mean()),
            )
        return out


class _Pending:
    """One queued row awaiting its slice of a batched prediction."""

    __slots__ = ("row", "event", "result", "error")

    def __init__(self, row: np.ndarray) -> None:
        self.row = row
        self.event = threading.Event()
        self.result = None
        self.error: Exception | None = None


class MicroBatcher:
    """Coalesce concurrent ``submit(row)`` calls into batched predicts.

    ``predict_fn`` receives a 2-D array of stacked rows and must return
    one result per row (labels/values 1-D, or probabilities 2-D).
    ``submit`` blocks until the caller's row has been predicted and
    returns just that row's result; exceptions raised by ``predict_fn``
    propagate to every caller in the failed batch.
    """

    def __init__(self, predict_fn, max_batch: int = 32,
                 max_delay_ms: float = 2.0,
                 idle_gap_ms: float | None = None,
                 stats: ServingStats | None = None,
                 max_queue: int | None = None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.predict_fn = predict_fn
        self.max_batch = int(max_batch)
        #: bound on rows queued but not yet predicted; ``None`` keeps the
        #: historical unbounded queue (embedded/library use).  When full,
        #: submit() sheds (:class:`BatcherSaturated`) instead of queueing
        self.max_queue = int(max_queue) if max_queue is not None else None
        self.max_delay = float(max_delay_ms) / 1e3
        # closed-loop clients stop submitting until their batch returns,
        # so once arrivals pause there is nothing left to wait for: the
        # idle gap closes the batch early instead of sleeping out the
        # whole delay window (which caps *total* coalescing wait)
        self.idle_gap = (float(idle_gap_ms) / 1e3 if idle_gap_ms is not None
                         else self.max_delay / 8)
        self.stats = stats if stats is not None else ServingStats()
        self._queue: queue.Queue = queue.Queue(maxsize=self.max_queue or 0)
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Rows currently queued and not yet handed to the model
        (approximate, as any concurrent queue size is)."""
        return self._queue.qsize()

    def submit(self, row) -> np.ndarray:
        """Predict one raw row; blocks until the batched result arrives.

        With ``max_queue`` set, a full queue sheds the request
        immediately (:class:`BatcherSaturated`) instead of blocking —
        see the class docstring of :class:`BatcherSaturated`.
        """
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        item = _Pending(np.asarray(row, dtype=np.float64).reshape(-1))
        t0 = time.perf_counter()
        if self.max_queue is None:
            self._queue.put(item)
        else:
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self.stats.record_shed()
                raise BatcherSaturated(
                    f"predict queue is full ({self.max_queue} rows "
                    "waiting); retry later"
                ) from None
        item.event.wait()
        self.stats.record_request(
            time.perf_counter() - t0, error=item.error is not None
        )
        if item.error is not None:
            raise item.error
        return item.result

    def close(self) -> None:
        """Stop the worker; pending rows are still served first."""
        if not self._closed:
            self._closed = True
            self._queue.put(None)
            self._worker.join()
        # a submit() racing close() may have enqueued after the worker
        # consumed the sentinel: fail those waiters instead of leaving
        # them blocked on event.wait() forever
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                item.error = RuntimeError("MicroBatcher is closed")
                item.event.set()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker side ---------------------------------------------------
    def _collect(self) -> list[_Pending] | None:
        """Block for the first row, then gather more until the batch is
        full, the delay window closes, or arrivals pause for longer than
        the idle gap.  None means shut down."""
        first = self._queue.get()
        if first is None:
            return None
        batch = [first]
        deadline = time.perf_counter() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=min(remaining, self.idle_gap))
            except queue.Empty:
                break  # arrivals paused: serve what we have now
            if item is None:
                # shutdown requested: serve what we have, then exit
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            try:
                out = self.predict_fn(np.vstack([it.row for it in batch]))
                self.stats.record_batch(len(batch))
                for i, it in enumerate(batch):
                    it.result = out[i]
            except Exception as exc:  # propagate to every waiter
                for it in batch:
                    it.error = exc
            finally:
                for it in batch:
                    it.event.set()
