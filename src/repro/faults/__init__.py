"""Deterministic fault injection + the ``repro chaos`` soak harness.

See :mod:`repro.faults.plan` for the injection plane itself and
:mod:`repro.faults.chaos` for the ``python -m repro chaos`` entry point
that replays a :class:`FaultPlan` against a small search + serving
session as a reproducible soak test.
"""

from .plan import (
    KNOWN_SITES,
    FaultError,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    InjectedShmError,
    active,
    fault_hook,
    install,
    maybe_raise,
    stable_unit,
)

__all__ = [
    "KNOWN_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "InjectedShmError",
    "active",
    "fault_hook",
    "install",
    "maybe_raise",
    "stable_unit",
]
