"""The ``python -m repro chaos`` drill: prove the recovery machinery.

A chaos drill is the executable form of the failure-semantics contract:
it installs a seeded :class:`~repro.faults.FaultPlan`, runs a small
search and a serving session *through the real code paths*, and checks
the properties the README promises —

1. **Determinism**: two drills with the same ``--seed`` inject the same
   faults and produce identical trial logs, retry counts, and best
   config.
2. **Absorption**: a search under 20 % soft worker crashes (with
   retries on) converges to the *same best config* as the fault-free
   run — crashes cost retries, never answers.
3. **No leaks**: injected shared-memory failures and mid-drill pool
   rebuilds leave zero ``repro-ds-*`` segments in ``/dev/shm``.
4. **Load shedding**: an overloaded server rejects with
   :class:`AdmissionRejected` / :class:`BatcherSaturated` (the HTTP
   429/503 surface) instead of hanging, and serves normally again the
   moment pressure stops.
5. **Quarantine**: a corrupted registry artifact is quarantined and the
   ``latest`` alias falls back to the previous good version.

Exit code 0 iff every check passes, so CI can run the drill as a single
gate (``python -m repro chaos --seed 0 --budget 30s``).
"""

from __future__ import annotations

import glob
import json
import re
import threading
import time

from .plan import FaultPlan, install

__all__ = ["parse_budget", "run_drill"]

_SHM_GLOB = "/dev/shm/repro-ds-*"


def parse_budget(text: str) -> float:
    """``"30s"`` / ``"2m"`` / ``"500ms"`` / ``"45"`` -> seconds."""
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*(ms|s|m|h|)\s*",
                     str(text))
    if not m:
        raise ValueError(
            f"cannot parse budget {text!r}; use e.g. 30s, 2m, 500ms"
        )
    scale = {"ms": 1e-3, "s": 1.0, "": 1.0, "m": 60.0, "h": 3600.0}
    return float(m.group(1)) * scale[m.group(2)]


def _shm_segments() -> list[str]:
    return sorted(glob.glob(_SHM_GLOB))


def _sig(result) -> list[tuple]:
    """The deterministic identity of a trial log, retries included."""
    return [
        (t.learner, tuple(sorted(t.config.items())), t.error,
         t.failure is None, getattr(t, "attempts", 1))
        for t in result.trials
    ]


def _search(data, *, seed: int, plan_spec: dict | None, backend: str,
            budget_s: float, retries: int = 3):
    """One small search, optionally under an installed fault plan."""
    from ..core.automl import AutoML

    plan = FaultPlan.from_spec(plan_spec) if plan_spec else None
    prev = install(plan)
    try:
        automl = AutoML(seed=0, init_sample_size=150)
        automl.fit(
            data.X, data.y, task="classification",
            time_budget=budget_s, max_iters=6,
            n_workers=1 if backend == "serial" else 2,
            backend=None if backend == "serial" else backend,
            estimator_list=["lgbm"],
            use_sampling=False,  # proposals independent of trial timing
            resampling="holdout", cv_instance_threshold=0,
            retries=retries,
        )
    finally:
        install(prev)
    return automl, plan


def _drill_search(report: dict, problems: list, data, args,
                  remaining) -> object:
    """Phases 1+2: determinism and crash absorption.  Returns the
    fault-free AutoML (reused to build the serving artifact)."""
    # p=0.36 with retries=3: fault decisions are a pure function of
    # (seed, trial identity, attempt), so for the default --seed 0 this
    # fires a three-deep retry chain on one trial and still converges;
    # an unlucky seed could exhaust a trial's 4 attempts (p**4 ~ 1.7%)
    crash_plan = {
        "seed": args.seed,
        "rules": [{"site": "worker.crash", "probability": 0.36}],
    }
    budget = lambda: max(2.0, min(15.0, remaining()))  # noqa: E731
    clean, _ = _search(data, seed=args.seed, plan_spec=None,
                       backend=args.backend, budget_s=budget())
    faulted_a, _ = _search(data, seed=args.seed, plan_spec=crash_plan,
                           backend=args.backend, budget_s=budget())
    faulted_b, _ = _search(data, seed=args.seed, plan_spec=crash_plan,
                           backend=args.backend, budget_s=budget())
    sig_a, sig_b = _sig(faulted_a.search_result), _sig(faulted_b.search_result)
    retries_a = sum(a[4] - 1 for a in sig_a)
    deterministic = (
        sig_a == sig_b
        and faulted_a.best_config == faulted_b.best_config
        and faulted_a.best_estimator == faulted_b.best_estimator
    )
    absorbed = (
        faulted_a.best_config == clean.best_config
        and faulted_a.best_estimator == clean.best_estimator
        and faulted_a.best_loss == clean.best_loss
    )
    report["search"] = {
        "trials": faulted_a.search_result.n_trials,
        "retries": retries_a,
        "deterministic": deterministic,
        "crashes_absorbed": absorbed,
        "best": {"learner": clean.best_estimator,
                 "error": clean.best_loss},
    }
    if not deterministic:
        problems.append(
            "nondeterministic: two same-seed faulted searches diverged"
        )
    if not absorbed:
        problems.append(
            "crash absorption failed: faulted best config != fault-free"
        )
    return clean


def _drill_infra(report: dict, problems: list, data, args,
                 remaining) -> None:
    """Phase 3: infra faults (shm attach, failed trials, native build)
    must degrade, not crash the search."""
    import numpy as np

    infra_plan = {
        "seed": args.seed,
        "rules": [
            {"site": "shm.attach", "probability": 1.0, "count": 2},
            # count-capped: failed (non-crash) trials are not retried,
            # and a re-proposed config re-hits the same deterministic
            # decision — uncapped, a failing init config would fail the
            # whole search (every re-proposal shares its fault key)
            {"site": "trial.exception", "probability": 0.3, "count": 2},
            {"site": "native.build", "probability": 1.0, "count": 1},
        ],
    }
    try:
        automl, plan = _search(
            data, seed=args.seed, plan_spec=infra_plan,
            backend=args.backend,
            budget_s=max(2.0, min(15.0, remaining())),
        )
        finished = bool(np.isfinite(automl.best_loss))
        result = automl.search_result
        report["infra"] = {
            "finished": finished,
            "trials": result.n_trials,
            "failed_trials": len(result.failures),
            "faults_fired_in_driver": plan.fired() if plan else 0,
        }
        if not finished:
            problems.append(
                "infra drill: search under shm/trial faults found no "
                "finite best error"
            )
    except Exception as exc:  # the whole point is that this never throws
        report["infra"] = {"finished": False, "error": repr(exc)}
        problems.append(f"infra drill: search raised {exc!r}")


def _drill_registry(report: dict, problems: list, artifact,
                    tmpdir: str) -> None:
    """Phase 4: corrupt an artifact -> quarantine + alias fallback."""
    import os

    from ..serve.registry import ModelRegistry, RegistryError

    reg = ModelRegistry(os.path.join(tmpdir, "registry"))
    reg.register("chaos", artifact)
    v2 = reg.register("chaos", artifact)
    blob = os.path.join(reg.root, "chaos", f"v{v2}", "artifact.json")
    with open(blob, "ab") as f:
        f.write(b" corrupted")
    try:
        reg.get("chaos", "latest")  # must fall back to v1
        served = True
    except RegistryError:
        served = False
    quarantined = any(
        e["version"] == v2 and e.get("quarantined")
        for e in reg.versions("chaos")
    )
    report["registry"] = {
        "fallback_served": served, "quarantined": quarantined,
    }
    if not served:
        problems.append(
            "registry drill: alias read failed instead of falling back"
        )
    if not quarantined:
        problems.append(
            "registry drill: corrupted version was not quarantined"
        )


def _drill_serving(report: dict, problems: list, artifact,
                   args) -> None:
    """Phase 5: overload -> bounded sheds, then immediate recovery."""
    from ..serve.batching import BatcherSaturated
    from ..serve.server import (AdmissionRejected, DeadlineExceeded,
                                ModelServer)

    server = ModelServer(
        artifacts={"chaos": artifact},
        max_batch=4, max_delay_ms=2.0,
        max_inflight=2, max_queue=2,
    )
    # every predict sleeps 20 ms while holding its admission slot, so
    # 8 concurrent clients must overflow max_inflight=2 deterministically
    prev = install({
        "seed": args.seed,
        "rules": [{"site": "http.predict", "probability": 1.0,
                   "mode": "delay", "param": 0.02}],
    })
    counts = {"ok": 0, "shed": 0, "other": 0}
    lock = threading.Lock()
    row = [0.0] * int(artifact.metadata.get("n_features_in") or 6)

    def client() -> None:
        for _ in range(4):
            try:
                server.predict("chaos", row)
                outcome = "ok"
            except (AdmissionRejected, BatcherSaturated,
                    DeadlineExceeded):
                outcome = "shed"
            except Exception:
                outcome = "other"
            with lock:
                counts[outcome] += 1

    try:
        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        install(prev)
    # pressure is off: the very next request must be served normally
    try:
        server.predict("chaos", row)
        recovered = True
    except Exception:
        recovered = False
    finally:
        server.close()
    report["serving"] = {**counts, "recovered": recovered,
                        "sheds_counted": server.shed_counts}
    if counts["shed"] == 0:
        problems.append("serving drill: overload shed zero requests")
    if counts["ok"] == 0:
        problems.append("serving drill: overload starved every request")
    if counts["other"]:
        problems.append(
            f"serving drill: {counts['other']} requests failed with an "
            "unexpected error (not a shed)"
        )
    if not recovered:
        problems.append("serving drill: server did not recover after load")


def run_drill(args) -> int:
    """Entry point behind ``python -m repro chaos``; returns exit code."""
    import tempfile

    from ..data import make_classification

    budget_s = parse_budget(args.budget)
    t0 = time.monotonic()
    remaining = lambda: budget_s - (time.monotonic() - t0)  # noqa: E731
    shm_before = set(_shm_segments())

    report: dict = {"seed": args.seed, "backend": args.backend,
                    "budget_s": budget_s}
    problems: list[str] = []

    data = make_classification(500, 6, class_sep=1.2, seed=0,
                               name="chaos").shuffled(0)
    clean = _drill_search(report, problems, data, args, remaining)
    _drill_infra(report, problems, data, args, remaining)

    if not args.skip_serving:
        artifact = clean.export_artifact()
        with tempfile.TemporaryDirectory() as tmpdir:
            _drill_registry(report, problems, artifact, tmpdir)
        _drill_serving(report, problems, artifact, args)

    leaked = sorted(set(_shm_segments()) - shm_before)
    report["shm_leaked_segments"] = leaked
    if leaked:
        problems.append(f"leaked /dev/shm segments: {leaked}")

    report["elapsed_s"] = round(time.monotonic() - t0, 2)
    report["passed"] = not problems
    report["problems"] = problems
    if args.json:
        print(json.dumps(report, indent=1, default=str))
    else:
        search, infra = report["search"], report["infra"]
        print(f"search : {search['trials']} trials, "
              f"{search['retries']} retries, "
              f"deterministic={search['deterministic']}, "
              f"crashes_absorbed={search['crashes_absorbed']}")
        print(f"infra  : finished={infra.get('finished')} "
              f"failed_trials={infra.get('failed_trials', '?')}")
        if "registry" in report:
            r = report["registry"]
            print(f"registry: fallback_served={r['fallback_served']} "
                  f"quarantined={r['quarantined']}")
        if "serving" in report:
            s = report["serving"]
            print(f"serving: ok={s['ok']} shed={s['shed']} "
                  f"recovered={s['recovered']}")
        print(f"shm    : {len(leaked)} leaked segments")
        for p in problems:
            print(f"PROBLEM: {p}")
        print(f"CHAOS DRILL {'PASS' if not problems else 'FAIL'} "
              f"(seed={args.seed}, {report['elapsed_s']}s)")
    return 0 if not problems else 1
