"""Seeded, deterministic fault-injection plane.

Production robustness claims ("the search survives crashed workers",
"the server sheds load instead of hanging") are only claims until a
fault actually happens in a test.  This module makes faults *happen on
demand and reproducibly*: a :class:`FaultPlan` names injection sites
across the stack and decides — deterministically, from one seed —
whether each check fires.

Injection sites (see :data:`KNOWN_SITES`):

``trial.exception``
    The trial body raises before evaluation — surfaces as a normal
    *failed* (inf-error) trial, exercising the search's failed-trial
    bookkeeping.
``worker.crash``
    The worker dies mid-trial.  Soft (default): an
    :class:`InjectedCrash` escapes the trial body, which the engine
    classifies as a *crash*.  Hard (``hard=True``): the worker process
    calls ``os._exit`` — a real segfault-shaped death that breaks a
    process pool.
``worker.hang``
    The trial sleeps for ``param`` seconds before evaluating,
    exercising the engine's hard per-trial time limit.
``shm.attach``
    Shared-memory export (parent) or attach (worker) fails with
    :class:`InjectedShmError`, exercising the pickle-fallback path and
    segment-leak accounting.
``native.build``
    The native-kernel build fails, exercising the native→numpy
    degradation contract.
``registry.read``
    A registry artifact load reports an integrity (SHA-256) mismatch,
    exercising quarantine + alias-history fallback.
``http.predict``
    A served predict is delayed by ``param`` seconds (default) or — with
    ``mode="error"`` — raises, exercising admission control and load
    shedding.

**Determinism.**  Every decision is a pure function of ``(seed, site,
key, fire-index)``: call sites that can run concurrently or in worker
processes pass a stable ``key`` (e.g. the trial's cache key + attempt
number), so the decision does not depend on thread scheduling or
process boundaries — two chaos runs with the same seed inject exactly
the same faults.  Keyless sites fall back to a per-site check counter,
which is deterministic whenever the call order is (single-threaded
chaos drivers).  ``count=`` limits are tracked per process.

The plan is **off by default** and costs one module-level ``is None``
check when inactive; nothing in the library behaves differently until
:func:`install` is called (or a plan spec is shipped to a worker).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from ..obs.metrics import REGISTRY

__all__ = [
    "KNOWN_SITES",
    "FaultError",
    "InjectedFault",
    "InjectedCrash",
    "InjectedShmError",
    "FaultRule",
    "FaultPlan",
    "install",
    "active",
    "fault_hook",
    "maybe_raise",
    "stable_unit",
]

#: every injection site the library consults (a plan naming an unknown
#: site is rejected at construction, so typos fail loudly)
KNOWN_SITES = (
    "trial.exception",
    "worker.crash",
    "worker.hang",
    "shm.attach",
    "native.build",
    "registry.read",
    "http.predict",
)


class FaultError(RuntimeError):
    """Base class of every injected failure (greppable in tracebacks)."""


class InjectedFault(FaultError):
    """A generic injected exception (``trial.exception``, error-mode
    ``http.predict``, ``registry.read``)."""


class InjectedCrash(FaultError):
    """A soft worker crash: escapes the trial body so the engine
    classifies the trial as *crash* (retryable) rather than *failed*."""


class InjectedShmError(OSError, FaultError):
    """An injected shared-memory export/attach failure.  Subclasses
    ``OSError`` so the recovery paths that catch real shm errors
    (``ENOSPC``, vanished segments) handle the injected kind too."""


def stable_unit(key) -> float:
    """A uniform [0, 1) value derived stably from ``repr(key)``.

    Used both for fault decisions and for deterministic retry-backoff
    jitter: unlike ``random.random()`` the value survives process
    boundaries, thread interleaving, and re-runs.
    """
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultRule:
    """One site's schedule: fire with ``probability`` per check, at most
    ``count`` times (per process), optionally only after the first
    ``after`` checks.  ``param`` is the site-specific scalar (hang /
    delay seconds); ``mode`` selects a site-specific flavour (e.g.
    ``http.predict`` ``"delay"`` vs ``"error"``); ``hard=True`` makes
    ``worker.crash`` kill the worker process for real."""

    site: str
    probability: float = 1.0
    count: int | None = None
    after: int = 0
    param: float | None = None
    mode: str | None = None
    hard: bool = False

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: "
                + ", ".join(KNOWN_SITES)
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def to_dict(self) -> dict:
        out = {"site": self.site, "probability": self.probability}
        if self.count is not None:
            out["count"] = self.count
        if self.after:
            out["after"] = self.after
        if self.param is not None:
            out["param"] = self.param
        if self.mode is not None:
            out["mode"] = self.mode
        if self.hard:
            out["hard"] = True
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "FaultRule":
        return cls(**d)


@dataclass
class _SiteState:
    """Per-process mutable bookkeeping for one site's rule."""

    checks: int = 0
    fired: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class FaultPlan:
    """A seeded set of :class:`FaultRule`s, queryable via
    :meth:`decide`.  Picklable-by-spec: :meth:`spec` / :meth:`from_spec`
    round-trip the plan (sans per-process counters) so process workers
    can re-instantiate it from the executor's init payload."""

    def __init__(self, rules, seed: int = 0) -> None:
        if isinstance(rules, dict):
            # convenience: {"worker.crash": 0.2, "worker.hang": {...}}
            rules = [
                FaultRule(site=site, probability=v) if not isinstance(v, dict)
                else FaultRule(site=site, **v)
                for site, v in rules.items()
            ]
        self.rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ValueError(f"duplicate rule for site {rule.site!r}")
            self.rules[rule.site] = rule
        self.seed = int(seed)
        self._state = {site: _SiteState() for site in self.rules}

    # -- wire form -----------------------------------------------------
    def spec(self) -> dict:
        """JSON-safe description (rules + seed), counters excluded."""
        return {
            "seed": self.seed,
            "rules": [r.to_dict() for r in self.rules.values()],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        return cls(
            [FaultRule.from_dict(d) for d in spec.get("rules", ())],
            seed=spec.get("seed", 0),
        )

    # -- decisions -----------------------------------------------------
    def decide(self, site: str, key=None) -> FaultRule | None:
        """Whether a check at ``site`` fires; returns the rule if so.

        With a ``key`` the decision is a pure function of
        ``(seed, site, key)`` — stable across threads, processes, and
        runs.  Without one, the per-site check counter substitutes for
        the key (deterministic when call order is).
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        st = self._state[site]
        with st.lock:
            index = st.checks
            st.checks += 1
            if index < rule.after:
                return None
            if rule.count is not None and st.fired >= rule.count:
                return None
        if key is None:
            key = index
        u = stable_unit((self.seed, site, key))
        if u >= rule.probability:
            return None
        with st.lock:
            if rule.count is not None and st.fired >= rule.count:
                return None  # lost a race to the last token
            st.fired += 1
        REGISTRY.counter(
            "repro_faults_injected_total",
            "Faults fired by the injection plane, by site.",
            site=site,
        ).inc()
        return rule

    def fired(self, site: str | None = None) -> int:
        """How many times ``site`` (or all sites) fired in this process."""
        if site is not None:
            return self._state[site].fired if site in self._state else 0
        return sum(st.fired for st in self._state.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sites = ", ".join(
            f"{r.site}={r.probability:g}" for r in self.rules.values()
        )
        return f"FaultPlan(seed={self.seed}, {sites})"


#: the process-wide active plan; ``None`` means faults are off and every
#: hook returns after one attribute read
_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan | dict | None) -> FaultPlan | None:
    """Activate ``plan`` process-wide (``None`` deactivates); returns
    the previous plan so callers can restore it."""
    global _ACTIVE
    prev = _ACTIVE
    if isinstance(plan, dict):
        plan = FaultPlan.from_spec(plan)
    _ACTIVE = plan
    return prev


def active() -> FaultPlan | None:
    """The currently installed plan, or ``None``."""
    return _ACTIVE


def fault_hook(site: str, key=None) -> FaultRule | None:
    """The universal call-site check: ``None`` (fast path, no plan or no
    rule) or the :class:`FaultRule` that fired."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.decide(site, key=key)


def maybe_raise(site: str, key=None, exc_type: type = InjectedFault) -> None:
    """Raise ``exc_type`` if a fault fires at ``site`` (the one-liner
    for sites whose only behaviour is "this operation fails")."""
    rule = fault_hook(site, key=key)
    if rule is not None:
        raise exc_type(f"injected fault at {site}")
