"""Trial execution: train a configuration, observe (error, cost).

This is step 3 of the control flow (Figure 3): the controller invokes a
trial with χ = (learner, hyperparameters, sample size, resampling
strategy) and observes the validation error ε̃(χ) and cost κ(χ).  Cost is
measured as the wall-clock time of training + validation, exactly the
quantity FLAML's ECI reasons about.
"""

from __future__ import annotations

import inspect
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..data.binned import BinnedDataset, plane_enabled, plane_for
from ..data.dataset import Dataset, holdout_indices, kfold_indices
from ..metrics.registry import Metric
from ..obs.trace import trace_span

__all__ = ["TrialOutcome", "evaluate_config"]


@dataclass
class TrialOutcome:
    """What one trial produced.

    ``failure`` carries the formatted traceback of a failed
    (inf-error) trial so the search log can say *why*, not just that
    it failed.  ``trace``/``metrics`` are observability buffers a
    process worker ships back with the result (span records and a
    metrics-registry diff); the engine merges and strips them before
    the outcome reaches the controller or the trial cache.
    """

    error: float
    cost: float
    model: object | None
    failure: str | None = None
    trace: list | None = field(default=None, repr=False)
    metrics: dict | None = field(default=None, repr=False)
    #: how many executions this outcome took (1 = no retries); > 1 when
    #: the engine's RetryPolicy re-ran a crashed or timed-out trial
    attempts: int = 1


def _compute_accepted_extras(cls: type) -> frozenset[str] | None:
    try:
        sig = inspect.signature(cls)
    except (TypeError, ValueError):
        return None
    params = sig.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return frozenset({"seed", "train_time_limit"})
    return frozenset({"seed", "train_time_limit"} & sig.parameters.keys())


#: bound on the signature-inspection cache below.  Far above the
#: registered-learner count; only pathological streams of dynamically
#: defined classes ever evict.
_ACCEPTED_EXTRAS_LIMIT = 128
#: id(cls) -> (weakref to cls, accepted extras).  Keyed weakly so the
#: cache never pins a class alive: an unbounded ``lru_cache`` here held
#: strong references to every class ever evaluated, which leaked each
#: dynamically defined custom learner (test suites generate thousands).
_accepted_extras_cache: OrderedDict[int, tuple] = OrderedDict()
#: guards the cache against ThreadExecutor worker threads and the
#: weakref eviction callbacks; reentrant because a GC-triggered callback
#: can run on the very thread that already holds the lock
_accepted_extras_lock = threading.RLock()


def _accepted_extras(cls: type) -> frozenset[str] | None:
    """Which of {seed, train_time_limit} ``cls(...)`` accepts, decided by
    signature inspection; None if the signature is unavailable.

    Memoized in a small bounded mapping keyed by a weak reference — a
    collected class evicts its own entry (and frees the id for reuse)
    via the weakref callback.  All cache mutation happens under a lock:
    thread-backend trials call this concurrently, and the GC callback
    can fire between a lookup and its ``move_to_end``.
    """
    key = id(cls)
    with _accepted_extras_lock:
        entry = _accepted_extras_cache.get(key)
        if entry is not None:
            ref, value = entry
            if ref() is cls:
                _accepted_extras_cache.move_to_end(key)
                return value
            del _accepted_extras_cache[key]  # id recycled by a new class
    value = _compute_accepted_extras(cls)
    try:
        ref = weakref.ref(cls, _evict_accepted_extras(key))
    except TypeError:  # un-weakref-able callable: compute, don't cache
        return value
    with _accepted_extras_lock:
        _accepted_extras_cache[key] = (ref, value)
        while len(_accepted_extras_cache) > _ACCEPTED_EXTRAS_LIMIT:
            _accepted_extras_cache.popitem(last=False)
    return value


def _evict_accepted_extras(key: int):
    def _evict(_ref) -> None:
        with _accepted_extras_lock:
            _accepted_extras_cache.pop(key, None)

    return _evict


def _make_estimator(cls: type, config: dict, seed: int,
                    train_time_limit: float | None):
    """Instantiate, forwarding seed/time-limit only if the class accepts them.

    Acceptance is decided by inspecting the constructor signature, not by
    catching TypeError on trial instantiations: a blind retry chain would
    also swallow TypeErrors raised *inside* ``__init__`` (e.g. a genuinely
    bad hyperparameter value) and mask the real bug by silently dropping
    kwargs.  Such errors now propagate to the caller, where
    ``evaluate_config`` records them as a failed (inf-error) trial.
    """
    kwargs = dict(config)
    accepted = _accepted_extras(cls)
    if accepted is None:
        # signature not introspectable (e.g. a C-extension class): fall
        # back to the legacy retry chain — full kwarg set, then
        # seed-only, then the bare config
        try:
            return cls(**kwargs, seed=seed, train_time_limit=train_time_limit)
        except TypeError:
            pass
        try:
            return cls(**kwargs, seed=seed)
        except TypeError:
            return cls(**kwargs)
    if "seed" in accepted:
        kwargs["seed"] = seed
    if "train_time_limit" in accepted:
        kwargs["train_time_limit"] = train_time_limit
    return cls(**kwargs)


def _predict_for_metric(model, X: np.ndarray, metric: Metric, task: str):
    if task != "regression" and metric.needs_proba:
        return model.predict_proba(X)
    return model.predict(X)


def _fold_error(model, Xv, yv, metric: Metric, task: str, labels):
    with trace_span("trial.score"):
        pred = _predict_for_metric(model, Xv, metric, task)
        if task != "regression" and metric.needs_proba and labels is not None:
            # align probability columns with the global label set: a fold's
            # training split may be missing classes entirely
            classes = getattr(model, "classes_", None)
            if classes is not None and len(classes) != len(labels):
                full = np.zeros((pred.shape[0], len(labels)))
                lut = {c: i for i, c in enumerate(labels)}
                for j, c in enumerate(classes):
                    full[:, lut[c]] = pred[:, j]
                pred = full
    with trace_span("trial.metric"):
        if metric.needs_proba:
            return metric.error(yv, pred, labels=labels)
        return metric.error(yv, pred)


def _temporal_error(
    data: Dataset,
    estimator_cls: type,
    config: dict,
    sample_size: int,
    metric: Metric,
    n_splits: int,
    seed: int,
    train_time_limit: float | None,
    horizon: int,
    seasonal_period: int | None,
):
    """Rolling-origin evaluation of one forecast trial.

    The config is split into estimator vs featurization halves
    (``fc_*``); every fold trains a :class:`~repro.data.timeseries.
    ForecastModel` on rows strictly before its validation block and
    scores a recursive ``horizon``-step forecast against the actuals —
    the sample-size prefix takes the *most recent* ``s`` training rows,
    the temporal counterpart of the paper's subsample-of-shuffled-data.
    Returns (mean error, last fold's fitted model).
    """
    from ..data.timeseries import ForecastModel, featurizer_from_config, \
        split_forecast_config
    from .resampling import TemporalSplitter

    base_cfg, fc_cfg = split_forecast_config(config)
    featurizer = featurizer_from_config(fc_cfg, seasonal_period)
    h = max(1, int(horizon))
    y = np.asarray(data.y, dtype=np.float64)
    # a fold must hold enough history for one feature row plus at least
    # two supervised rows; shrink the fold count for short series rather
    # than failing the trial outright
    min_train = featurizer.min_history + 2
    k = max(1, min(int(n_splits), (data.n - min_train) // h))
    splitter = TemporalSplitter(n_splits=k, horizon=h, min_train=min_train)
    per_fold_limit = train_time_limit / k if train_time_limit is not None else None
    errors = []
    model = None
    for tr, va in splitter.split(data.n):
        s = max(int(sample_size), min_train)
        tr_used = tr[-min(s, tr.size):]
        with trace_span("trial.construct"):
            base = _make_estimator(estimator_cls, base_cfg, seed,
                                   per_fold_limit)
            model = ForecastModel(base, featurizer, horizon=h)
        with trace_span("trial.fit"):
            model.fit(y[tr_used])
        with trace_span("trial.score"):
            pred = model.forecast(va.size)
        with trace_span("trial.metric"):
            errors.append(metric.error(y[va], pred, history=y[tr_used]))
    return float(np.mean(errors)), model


def _plane_error(
    plane: BinnedDataset,
    estimator_cls: type,
    config: dict,
    sample_size: int,
    resampling: str,
    metric: Metric,
    n_splits: int,
    holdout_ratio: float,
    seed: int,
    train_time_limit: float | None,
    labels,
):
    """Holdout/CV trial routed through the shared binned plane.

    Split indices are memoized per (kind, n, k/ratio, seed); histogram
    learners get :class:`~repro.learners.histogram.BinnedMatrix` views
    whose codes are memoized per (row-subset, max_bins).  Both
    memoizations are pure reuse — every array equals what the legacy
    per-trial computation below produces, so errors are bit-for-bit
    identical (golden-tested).
    """
    data = plane.data
    binnable = bool(getattr(estimator_cls, "_uses_binned_plane", False)) and (
        plane.exact or plane.sketch
    )
    if not binnable and getattr(data, "_codes_only", False):
        # a codes-only worker holds a stub feature matrix: running a
        # learner on it would silently fit garbage, so fail the trial
        # loudly instead (the controller records an inf-error outcome
        # with this message as the failure)
        raise RuntimeError(
            f"{estimator_cls.__name__} is not binned-plane aware but this "
            "worker only holds shipped bin codes (no raw features); "
            "construct the executor with ship_codes=False for mixed "
            "learner sets"
        )
    if resampling == "holdout":
        with trace_span("trial.bin"):
            tr, va = plane.holdout_split(holdout_ratio, seed)
        s = min(int(sample_size), tr.size)
        tr_used = tr[:s]
        with trace_span("trial.construct"):
            model = _make_estimator(estimator_cls, config, seed,
                                    train_time_limit)
        with trace_span("trial.bin"):
            if binnable:
                Xtr = plane.view(tr_used, ("ho-tr", float(holdout_ratio),
                                           int(seed), int(s)))
                Xva = plane.view(va, ("ho-va", float(holdout_ratio),
                                      int(seed)))
            else:
                Xtr, Xva = data.X[tr_used], data.X[va]
        with trace_span("trial.fit"):
            model.fit(Xtr, data.y[tr_used])
        error = _fold_error(model, Xva, data.y[va], metric, data.task, labels)
        return float(error), model
    n_sub = min(int(sample_size), data.n)
    k = min(n_splits, n_sub)
    with trace_span("trial.bin"):
        folds = plane.kfold_split(n_sub, k, seed)
    per_fold_limit = (
        train_time_limit / k if train_time_limit is not None else None
    )
    errors = []
    model = None
    for i, (tr, va) in enumerate(folds):
        with trace_span("trial.construct"):
            model = _make_estimator(estimator_cls, config, seed,
                                    per_fold_limit)
        with trace_span("trial.bin"):
            if binnable:
                Xtr = plane.view(tr, ("cv-tr", n_sub, k, int(seed), i))
                Xva = plane.view(va, ("cv-va", n_sub, k, int(seed), i))
            else:
                Xtr, Xva = data.X[tr], data.X[va]
        with trace_span("trial.fit"):
            model.fit(Xtr, data.y[tr])
        errors.append(
            _fold_error(model, Xva, data.y[va], metric, data.task, labels)
        )
    return float(np.mean(errors)), model


def evaluate_config(
    data: Dataset,
    estimator_cls: type,
    config: dict,
    sample_size: int,
    resampling: str,
    metric: Metric,
    n_splits: int = 5,
    holdout_ratio: float = 0.1,
    seed: int = 0,
    train_time_limit: float | None = None,
    labels: np.ndarray | None = None,
    horizon: int = 1,
    seasonal_period: int | None = None,
    use_binned_plane: bool | None = None,
) -> TrialOutcome:
    """Run one trial of χ = (estimator, config, s, r) and time it.

    ``data`` must already be (stratified-)shuffled; the sample of size
    ``s`` is a prefix (paper §4.2).  Under holdout the validation set is
    carved from the *full* data once (deterministically per seed) and the
    sample-size prefix applies to the training portion only — this keeps
    validation errors comparable across fidelities, which is what lets the
    controller track a single global best over trials of different sample
    sizes (FLAML does the same).  Under CV the folds are taken within the
    sample.  Under ``temporal`` (forecast tasks; data stays in time
    order, never shuffled) the trial is scored by rolling-origin CV —
    see :func:`_temporal_error`; ``horizon``/``seasonal_period`` only
    apply there.  Returns the validation error, the wall-clock cost, and
    a fitted model (the final deployment model is retrained by the
    caller).

    Holdout/CV trials normally route through the shared binned-data
    plane (:mod:`repro.data.binned`): split indices and histogram bin
    codes are memoized per dataset and reused across trials, with
    bit-for-bit identical errors.  ``use_binned_plane`` overrides the
    global :func:`~repro.data.binned.plane_enabled` toggle per call;
    the legacy per-trial path below is kept verbatim both as the
    fallback and as the equivalence baseline the golden tests compare
    against.
    """
    if resampling not in ("cv", "holdout", "temporal"):
        raise ValueError(
            f"resampling must be cv|holdout|temporal, got {resampling!r}"
        )
    start = time.perf_counter()
    if use_binned_plane is None:
        use_binned_plane = plane_enabled()
    plane = None
    if use_binned_plane and resampling in ("cv", "holdout"):
        plane = data if isinstance(data, BinnedDataset) else plane_for(data)
    if isinstance(data, BinnedDataset):
        data = data.data
    rng = np.random.default_rng(seed)
    model = None
    failure = None
    span = trace_span(
        "trial",
        learner=estimator_cls.__name__,
        resampling=resampling,
        sample_size=int(sample_size),
        plane=plane is not None,
    )
    try:
        with span:
            if plane is None and getattr(data, "_codes_only", False):
                raise RuntimeError(
                    "this worker only holds shipped bin codes (no raw "
                    "features); the legacy non-plane path cannot run here"
                )
            if resampling == "temporal":
                error, model = _temporal_error(
                    data, estimator_cls, config, sample_size, metric,
                    n_splits, seed, train_time_limit, horizon,
                    seasonal_period,
                )
            elif plane is not None:
                error, model = _plane_error(
                    plane, estimator_cls, config, sample_size, resampling,
                    metric, n_splits, holdout_ratio, seed, train_time_limit,
                    labels,
                )
            elif resampling == "holdout":
                with trace_span("trial.bin"):
                    y_strat = data.y if data.is_classification else None
                    tr, va = holdout_indices(data.n, holdout_ratio,
                                             y=y_strat, rng=rng)
                tr_used = tr[: min(int(sample_size), tr.size)]
                with trace_span("trial.construct"):
                    model = _make_estimator(estimator_cls, config, seed,
                                            train_time_limit)
                with trace_span("trial.fit"):
                    model.fit(data.X[tr_used], data.y[tr_used])
                error = _fold_error(model, data.X[va], data.y[va], metric,
                                    data.task, labels)
            else:
                sub = data.head(sample_size)
                y_strat = sub.y if sub.is_classification else None
                k = min(n_splits, sub.n)
                per_fold_limit = (
                    train_time_limit / k if train_time_limit is not None
                    else None
                )
                errors = []
                with trace_span("trial.bin"):
                    folds = list(kfold_indices(sub.n, k, y=y_strat, rng=rng))
                for tr, va in folds:
                    with trace_span("trial.construct"):
                        model = _make_estimator(estimator_cls, config, seed,
                                                per_fold_limit)
                    with trace_span("trial.fit"):
                        model.fit(sub.X[tr], sub.y[tr])
                    errors.append(
                        _fold_error(model, sub.X[va], sub.y[va], metric,
                                    sub.task, labels)
                    )
                error = float(np.mean(errors))
    except KeyboardInterrupt:
        raise
    except Exception:
        # a failed trial (degenerate sample, or a buggy custom learner)
        # must not kill the search: report error=inf and move on — the
        # proposers will deprioritise the offender via ECI.  The full
        # formatted traceback travels on the outcome so the trial log
        # can explain the failure instead of silently recording inf.
        error = np.inf
        model = None
        failure = traceback.format_exc()
    cost = time.perf_counter() - start
    return TrialOutcome(error=float(error), cost=float(cost), model=model,
                        failure=failure)
