"""Stacked-ensemble post-processing (paper appendix).

The paper: "Stacked ensemble can be added as a post-processing step like
existing libraries.  It requires remembering the predictions on
cross-validation folds of the models to ensemble.  And extra time needs
to be spent on building the ensemble and retraining each model.  FLAML
does not do it by default to keep the overhead low, but it offers the
option to enable it."

This module implements exactly that option: take the best distinct
configurations found during search, compute their out-of-fold predictions
on the training data, fit a linear stacker on those predictions, retrain
every base model on the full data, and serve the stack at prediction
time.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset, kfold_indices
from ..learners.linear import LogisticRegressionL2, RidgeRegressor
from .controller import SearchResult
from .evaluate import _make_estimator
from .registry import LearnerSpec

__all__ = ["StackedEnsemble", "build_ensemble", "select_ensemble_members"]


class StackedEnsemble:
    """A fitted stack: base models + a linear meta-learner."""

    def __init__(self, base_models: list, meta_model, task: str,
                 classes: np.ndarray | None = None) -> None:
        self.base_models = base_models
        self.meta_model = meta_model
        self.task = task
        self.classes_ = classes

    def _base_features(self, X: np.ndarray) -> np.ndarray:
        cols = []
        for m in self.base_models:
            if self.task == "regression":
                cols.append(m.predict(X).reshape(-1, 1))
            else:
                # drop the last column: probabilities are redundant
                cols.append(m.predict_proba(X)[:, :-1])
        return np.hstack(cols)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels/values through the stacked meta-learner."""
        Z = self._base_features(np.asarray(X, dtype=np.float64))
        return self.meta_model.predict(Z)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities through the stacked meta-learner."""
        if self.task == "regression":
            raise RuntimeError("predict_proba is not available for regression")
        Z = self._base_features(np.asarray(X, dtype=np.float64))
        return self.meta_model.predict_proba(Z)

    @property
    def n_members(self) -> int:
        """Number of base models in the ensemble."""
        return len(self.base_models)


def select_ensemble_members(
    result: SearchResult, max_members: int = 4
) -> list[tuple[str, dict]]:
    """Pick the best distinct (learner, config) pairs from a trial log.

    At most one configuration per learner (diversity beats depth for small
    stacks), ordered by validation error.
    """
    best_per_learner: dict[str, tuple[float, dict]] = {}
    for t in result.trials:
        if not np.isfinite(t.error):
            continue
        cur = best_per_learner.get(t.learner)
        if cur is None or t.error < cur[0]:
            best_per_learner[t.learner] = (t.error, dict(t.config))
    ranked = sorted(best_per_learner.items(), key=lambda kv: kv[1][0])
    return [(name, cfg) for name, (_, cfg) in ranked[:max_members]]


def build_ensemble(
    data: Dataset,
    members: list[tuple[str, dict]],
    learners: dict[str, LearnerSpec],
    n_splits: int = 5,
    seed: int = 0,
    train_time_limit: float | None = None,
) -> StackedEnsemble:
    """Fit a stacked ensemble from (learner, config) members.

    Out-of-fold predictions on ``data`` become the meta-learner's features
    (the appendix's "remembering the predictions on cross-validation
    folds"); base models are then retrained on the full data.
    """
    if not members:
        raise ValueError("need at least one ensemble member")
    task = data.task
    rng = np.random.default_rng(seed)
    y_strat = data.y if data.is_classification else None
    classes = np.unique(data.y) if data.is_classification else None
    folds = kfold_indices(data.n, min(n_splits, data.n), y=y_strat, rng=rng)

    # out-of-fold meta-features, one block of columns per member
    blocks = []
    for lname, cfg in members:
        cls = learners[lname].estimator_cls(task)
        if task == "regression":
            oof = np.zeros(data.n)
        else:
            oof = np.zeros((data.n, classes.size))
        for tr, va in folds:
            m = _make_estimator(cls, cfg, seed, train_time_limit)
            m.fit(data.X[tr], data.y[tr])
            if task == "regression":
                oof[va] = m.predict(data.X[va])
            else:
                proba = m.predict_proba(data.X[va])
                # align to the global class set
                m_classes = getattr(m, "classes_", classes)
                lut = {c: i for i, c in enumerate(classes)}
                for j, c in enumerate(m_classes):
                    oof[va, lut[c]] = proba[:, j]
        blocks.append(oof.reshape(data.n, -1) if task == "regression"
                      else oof[:, :-1])
    Z = np.hstack(blocks)

    if task == "regression":
        meta = RidgeRegressor(C=100.0).fit(Z, data.y)
    else:
        meta = LogisticRegressionL2(C=10.0).fit(Z, data.y)

    base_models = []
    for lname, cfg in members:
        cls = learners[lname].estimator_cls(task)
        m = _make_estimator(cls, cfg, seed, train_time_limit)
        m.fit(data.X, data.y)
        base_models.append(m)
    return StackedEnsemble(base_models, meta, task, classes)
