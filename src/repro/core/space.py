"""Search-space primitives and the paper's Table 5 default spaces.

A :class:`Domain` describes one hyperparameter: how to sample it, its
low-cost initial value (the bold entries in Table 5), and a bijection to
the unit interval so FLOW2 can do geometry in ``[0, 1]^d``.  Log-scaled
domains map through log-space, integer domains round on the way out, and
categorical choices are embedded ordinally (FLAML does the same).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "Domain",
    "Uniform",
    "LogUniform",
    "RandInt",
    "LogRandInt",
    "Choice",
    "SearchSpace",
    "add_forecast_domains",
]


class Domain:
    """One hyperparameter's range + initial point + unit-cube embedding."""

    init: Any

    def sample(self, rng: np.random.Generator):
        """Draw a uniform random value/config from the domain."""
        raise NotImplementedError

    def to_unit(self, value) -> float:
        """Map a value/config into the unit cube."""
        raise NotImplementedError

    def from_unit(self, u: float):
        """Map unit-cube coordinates back to a value/config."""
        raise NotImplementedError


@dataclass
class Uniform(Domain):
    """Uniform float in [lo, hi]."""

    lo: float
    hi: float
    init: float | None = None

    def __post_init__(self):
        if not self.lo < self.hi:
            raise ValueError(f"need lo < hi, got [{self.lo}, {self.hi}]")
        if self.init is None:
            self.init = self.lo

    def sample(self, rng):
        """Draw a uniform random value/config from the domain."""
        return float(rng.uniform(self.lo, self.hi))

    def to_unit(self, value):
        """Map a value/config into the unit cube."""
        return float(np.clip((value - self.lo) / (self.hi - self.lo), 0.0, 1.0))

    def from_unit(self, u):
        """Map unit-cube coordinates back to a value/config."""
        return float(self.lo + np.clip(u, 0.0, 1.0) * (self.hi - self.lo))


@dataclass
class LogUniform(Domain):
    """Log-uniform float in [lo, hi] (0 < lo)."""

    lo: float
    hi: float
    init: float | None = None

    def __post_init__(self):
        if not 0 < self.lo < self.hi:
            raise ValueError(f"need 0 < lo < hi, got [{self.lo}, {self.hi}]")
        if self.init is None:
            self.init = self.lo

    def sample(self, rng):
        """Draw a uniform random value/config from the domain."""
        return float(np.exp(rng.uniform(math.log(self.lo), math.log(self.hi))))

    def to_unit(self, value):
        """Map a value/config into the unit cube."""
        value = float(np.clip(value, self.lo, self.hi))
        return (math.log(value) - math.log(self.lo)) / (
            math.log(self.hi) - math.log(self.lo)
        )

    def from_unit(self, u):
        """Map unit-cube coordinates back to a value/config."""
        u = float(np.clip(u, 0.0, 1.0))
        return float(
            math.exp(math.log(self.lo) + u * (math.log(self.hi) - math.log(self.lo)))
        )


@dataclass
class RandInt(Domain):
    """Uniform integer in [lo, hi]."""

    lo: int
    hi: int
    init: int | None = None

    def __post_init__(self):
        if not self.lo < self.hi:
            raise ValueError(f"need lo < hi, got [{self.lo}, {self.hi}]")
        if self.init is None:
            self.init = self.lo

    def sample(self, rng):
        """Draw a uniform random value/config from the domain."""
        return int(rng.integers(self.lo, self.hi + 1))

    def to_unit(self, value):
        """Map a value/config into the unit cube."""
        return float(np.clip((value - self.lo) / (self.hi - self.lo), 0.0, 1.0))

    def from_unit(self, u):
        """Map unit-cube coordinates back to a value/config."""
        return int(round(self.lo + np.clip(u, 0.0, 1.0) * (self.hi - self.lo)))


@dataclass
class LogRandInt(Domain):
    """Log-uniform integer in [lo, hi] (0 < lo)."""

    lo: int
    hi: int
    init: int | None = None

    def __post_init__(self):
        if not 0 < self.lo < self.hi:
            raise ValueError(f"need 0 < lo < hi, got [{self.lo}, {self.hi}]")
        if self.init is None:
            self.init = self.lo

    def sample(self, rng):
        """Draw a uniform random value/config from the domain."""
        return int(round(np.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))))

    def to_unit(self, value):
        """Map a value/config into the unit cube."""
        value = float(np.clip(value, self.lo, self.hi))
        return (math.log(value) - math.log(self.lo)) / (
            math.log(self.hi) - math.log(self.lo)
        )

    def from_unit(self, u):
        """Map unit-cube coordinates back to a value/config."""
        u = float(np.clip(u, 0.0, 1.0))
        return int(
            round(
                math.exp(
                    math.log(self.lo) + u * (math.log(self.hi) - math.log(self.lo))
                )
            )
        )


@dataclass
class Choice(Domain):
    """Categorical choice over ``options`` (ordinal unit-cube embedding)."""

    options: tuple
    init: Any = None

    def __post_init__(self):
        self.options = tuple(self.options)
        if len(self.options) < 2:
            raise ValueError("Choice needs at least two options")
        if self.init is None:
            self.init = self.options[0]
        elif self.init not in self.options:
            raise ValueError(f"init {self.init!r} not among options")

    def sample(self, rng):
        """Draw a uniform random value/config from the domain."""
        return self.options[int(rng.integers(0, len(self.options)))]

    def to_unit(self, value):
        """Map a value/config into the unit cube."""
        i = self.options.index(value)
        return (i + 0.5) / len(self.options)

    def from_unit(self, u):
        """Map unit-cube coordinates back to a value/config."""
        i = int(np.clip(u, 0.0, 1.0 - 1e-12) * len(self.options))
        return self.options[i]


class SearchSpace:
    """An ordered mapping of hyperparameter name -> :class:`Domain`."""

    def __init__(self, domains: dict[str, Domain]) -> None:
        if not domains:
            raise ValueError("empty search space")
        self.domains = dict(domains)
        self.names = list(domains)

    @property
    def dim(self) -> int:
        """Number of hyperparameters in the space."""
        return len(self.names)

    def init_config(self) -> dict:
        """The low-cost initial configuration (Table 5 bold values)."""
        return {k: d.init for k, d in self.domains.items()}

    def sample(self, rng: np.random.Generator) -> dict:
        """Draw a uniform random value/config from the domain."""
        return {k: d.sample(rng) for k, d in self.domains.items()}

    def to_unit(self, config: dict) -> np.ndarray:
        """Map a value/config into the unit cube."""
        return np.array(
            [self.domains[k].to_unit(config[k]) for k in self.names], dtype=np.float64
        )

    def from_unit(self, u: np.ndarray) -> dict:
        """Map unit-cube coordinates back to a value/config."""
        return {k: self.domains[k].from_unit(u[i]) for i, k in enumerate(self.names)}


# ----------------------------------------------------------------------
# Table 5 default spaces.  S = number of training instances; bold values
# (lowest cost/complexity) are the init points.
# ----------------------------------------------------------------------
def xgboost_space(data_size: int, task: str) -> SearchSpace:
    """Table 5 default space for the XGBoost-like learner."""
    cap = max(5, min(32768, data_size))
    return SearchSpace(
        {
            "tree_num": LogRandInt(4, cap, init=4),
            "leaf_num": LogRandInt(4, cap, init=4),
            "min_child_weight": LogUniform(0.01, 20.0, init=20.0),
            "learning_rate": LogUniform(0.01, 1.0, init=0.1),
            "subsample": Uniform(0.6, 1.0, init=1.0),
            "reg_alpha": LogUniform(1e-10, 1.0, init=1e-10),
            "reg_lambda": LogUniform(1e-10, 1.0, init=1.0),
            "colsample_bylevel": Uniform(0.6, 1.0, init=1.0),
            "colsample_bytree": Uniform(0.7, 1.0, init=1.0),
        }
    )


def lgbm_space(data_size: int, task: str) -> SearchSpace:
    """Table 5 default space for the LightGBM-like learner."""
    cap = max(5, min(32768, data_size))
    return SearchSpace(
        {
            "tree_num": LogRandInt(4, cap, init=4),
            "leaf_num": LogRandInt(4, cap, init=4),
            "min_child_weight": LogUniform(0.01, 20.0, init=20.0),
            "learning_rate": LogUniform(0.01, 1.0, init=0.1),
            "subsample": Uniform(0.6, 1.0, init=1.0),
            "reg_alpha": LogUniform(1e-10, 1.0, init=1e-10),
            "reg_lambda": LogUniform(1e-10, 1.0, init=1.0),
            "max_bin": LogRandInt(7, 1023, init=63),
            "colsample_bytree": Uniform(0.7, 1.0, init=1.0),
        }
    )


def catboost_space(data_size: int, task: str) -> SearchSpace:
    """Table 5 default space for the CatBoost-like learner."""
    return SearchSpace(
        {
            "early_stop_rounds": RandInt(10, 150, init=10),
            "learning_rate": LogUniform(0.005, 0.2, init=0.1),
        }
    )


def _forest_space(data_size: int, task: str) -> SearchSpace:
    cap = max(5, min(2048, data_size))
    domains: dict[str, Domain] = {
        "tree_num": LogRandInt(4, cap, init=4),
        "max_features": Uniform(0.1, 1.0, init=1.0),
    }
    if task != "regression":
        domains["criterion"] = Choice(("gini", "entropy"), init="gini")
    return SearchSpace(domains)


rf_space = _forest_space
extra_tree_space = _forest_space


def lrl1_space(data_size: int, task: str) -> SearchSpace:
    """Table 5 default space for the L1 logistic learner."""
    return SearchSpace({"C": LogUniform(0.03125, 32768.0, init=1.0)})


lrl2_space = lrl1_space


def xgb_limitdepth_space(data_size: int, task: str) -> SearchSpace:
    """Space for the extra depth-wise XGBoost learner: ``max_depth``
    replaces ``leaf_num`` (init at the shallowest/cheapest depth)."""
    cap = max(5, min(32768, data_size))
    return SearchSpace(
        {
            "tree_num": LogRandInt(4, cap, init=4),
            "max_depth": RandInt(1, 12, init=1),
            "min_child_weight": LogUniform(0.01, 20.0, init=20.0),
            "learning_rate": LogUniform(0.01, 1.0, init=0.1),
            "subsample": Uniform(0.6, 1.0, init=1.0),
            "reg_alpha": LogUniform(1e-10, 1.0, init=1e-10),
            "reg_lambda": LogUniform(1e-10, 1.0, init=1.0),
            "colsample_bylevel": Uniform(0.6, 1.0, init=1.0),
            "colsample_bytree": Uniform(0.7, 1.0, init=1.0),
        }
    )


def knn_space(data_size: int, task: str) -> SearchSpace:
    """Space for the extra k-nearest-neighbour learner (not in Table 5;
    mirrors the ranges FLAML's open-source release later adopted)."""
    cap = max(2, min(256, data_size // 2 or 2))
    return SearchSpace(
        {
            "n_neighbors": LogRandInt(1, cap, init=min(5, cap)),
            "weights": Choice(("uniform", "distance"), init="uniform"),
        }
    )


def gaussian_nb_space(data_size: int, task: str) -> SearchSpace:
    """Space for the extra Gaussian naive Bayes learner."""
    return SearchSpace(
        {"var_smoothing": LogUniform(1e-12, 1e-1, init=1e-9)}
    )


def add_forecast_domains(space: SearchSpace, data_size: int) -> SearchSpace:
    """Extend a learner's space with the featurization hyperparameters of
    the forecasting reduction (``repro.data.timeseries``).

    ``fc_lags`` (consecutive lag count), ``fc_window`` (trailing rolling-
    mean window; 0 disables) and ``fc_diff`` (first-difference the series
    before modelling) ride alongside the learner's own hyperparameters,
    so one FLOW2 thread searches featurization and model jointly.  Inits
    are the cheapest/shortest-memory configuration, matching the Table 5
    low-cost-first convention.
    """
    lag_cap = int(max(2, min(24, data_size // 8)))
    domains = dict(space.domains)
    domains["fc_lags"] = LogRandInt(1, lag_cap, init=min(3, lag_cap))
    domains["fc_window"] = Choice((0, 4, 8, 16), init=0)
    domains["fc_diff"] = Choice((0, 1), init=0)
    return SearchSpace(domains)
