"""Estimated Cost for Improvement (ECI) — Eq. (1) of the paper.

Per learner ``l`` the controller tracks the quantities of Table 1/§4.2:

* ``K0`` — total cost spent on ``l`` so far;
* ``K1`` / ``K2`` — total cost spent on ``l`` at the times of the two most
  recent best-configuration updates for ``l``;
* ``delta`` — the error reduction between those two best configurations;
* ``best_error`` (ε̃_l) and the cost ``kappa`` of the current configuration.

From these:

* ``ECI1 = max(K0 - K1, K1 - K2)`` — cost to find an improvement at the
  current sample size (improvements get more expensive over time);
* ``ECI2 = c * kappa`` — cost to retry the current config with a sample
  size ``c`` times larger;
* ``ECI`` combines them with the cost of catching up to the global best
  error ε̃*:  learners behind the leader must additionally close the gap
  ``(ε̃_l - ε̃*)`` at their observed improvement rate ``v = delta / tau``;
  the gap-filling cost is doubled (diminishing returns, §4.2).

Untried learners get ``ECI1`` seeded from the fastest learner's smallest
observed trial cost times a per-learner constant (appendix: lgbm 1,
xgboost 1.6, extra_tree 1.9, rf 2, catboost 15, lrl1 160).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CostModel",
    "LearnerCostState",
    "eci",
    "LearnerProposer",
    "DEFAULT_COST_CONSTANTS",
]

#: appendix constants: relative cost of each learner's cheapest config
DEFAULT_COST_CONSTANTS: dict[str, float] = {
    "lgbm": 1.0,
    "xgboost": 1.6,
    "extra_tree": 1.9,
    "rf": 2.0,
    "catboost": 15.0,
    "lrl1": 160.0,
}


class CostModel:
    """Fitted cost-vs-sample-size model for the ECI₂ refinement.

    §4.2: "This simple cost estimation [ECI₂ = c·κ] can be refined when
    the complexity of the training procedure is known with respect to
    sample size."  Here the complexity is *learned* online: a least-
    squares fit of log(cost) against log(s) over the learner's own trials
    yields an exponent α, and growing the sample by c is predicted to
    scale cost by ``c**α``.  With fewer than three distinct sizes the
    model falls back to the paper's linear assumption (α = 1).

    The exponent is clipped to [0.25, 2.0]: timing noise on tiny trials
    can produce absurd slopes, and the clip keeps a bad fit from either
    freezing sample growth (huge α) or spamming it (negative α).
    """

    def __init__(self, min_points: int = 3,
                 clip: tuple[float, float] = (0.25, 2.0)) -> None:
        self.min_points = int(min_points)
        self.clip = clip
        self._log_s: list[float] = []
        self._log_cost: list[float] = []

    def observe(self, sample_size: int, cost: float) -> None:
        """Record one (sample size, trial cost) observation."""
        if sample_size > 0 and cost > 0:
            self._log_s.append(float(np.log(sample_size)))
            self._log_cost.append(float(np.log(cost)))

    @property
    def n_observations(self) -> int:
        """Number of recorded (sample size, cost) observations."""
        return len(self._log_s)

    @property
    def exponent(self) -> float:
        """The fitted α in cost ∝ s**α (1.0 until enough distinct sizes)."""
        if len(set(self._log_s)) < self.min_points:
            return 1.0
        x = np.asarray(self._log_s)
        y = np.asarray(self._log_cost)
        vx = ((x - x.mean()) ** 2).sum()
        if vx <= 0:
            return 1.0
        slope = (((x - x.mean()) * (y - y.mean())).sum()) / vx
        return float(np.clip(slope, *self.clip))

    def growth_factor(self, c: float) -> float:
        """Predicted cost multiplier when the sample grows by factor c."""
        return float(c) ** self.exponent


class LearnerCostState:
    """Cost/error bookkeeping for one learner.

    ``cost_model`` (optional) activates the §4.2 ECI₂ refinement: trial
    costs are regressed against sample size and ``eci2`` uses the fitted
    exponent instead of assuming linear complexity.
    """

    def __init__(self, name: str, cost_model: CostModel | None = None) -> None:
        self.name = name
        self.cost_model = cost_model
        self.K0 = 0.0  # total cost so far
        self.K1 = 0.0  # total cost at most recent best update
        self.K2 = 0.0  # total cost at second most recent best update
        self.delta = 0.0  # error reduction between the two updates
        self.best_error = np.inf
        self.kappa = 0.0  # cost of the current (best) configuration's trial
        self.n_trials = 0
        self.n_failures = 0  # trials that produced no model at all (error=inf)

    @property
    def tried(self) -> bool:
        """Whether this learner has run at least one trial."""
        return self.n_trials > 0

    def update(self, error: float, cost: float,
               sample_size: int | None = None) -> bool:
        """Record a finished trial; returns True if it improved ``l``'s best."""
        self.K0 += float(cost)
        self.n_trials += 1
        if self.cost_model is not None and sample_size is not None:
            self.cost_model.observe(sample_size, cost)
        if not np.isfinite(error):
            self.n_failures += 1
        improved = error < self.best_error
        if improved:
            if np.isfinite(self.best_error):
                self.delta = self.best_error - error
            else:
                # paper: if the first config is the best so far, delta = eps_l
                self.delta = float(error)
            self.K2 = self.K1
            self.K1 = self.K0
            self.best_error = float(error)
            self.kappa = float(cost)
        return improved

    # ------------------------------------------------------------------
    def eci1(self) -> float:
        """Estimated cost to improve at the current sample size."""
        return max(self.K0 - self.K1, self.K1 - self.K2)

    def eci2(self, c: float) -> float:
        """Estimated cost to retry the current config with c x sample size."""
        if self.cost_model is not None:
            return self.cost_model.growth_factor(c) * self.kappa
        return c * self.kappa


def eci(
    state: LearnerCostState,
    global_best_error: float,
    c: float,
    min_eci: float = 1e-10,
) -> float:
    """Eq. (1): estimated cost for learner ``l`` to beat the global best."""
    e2 = state.eci2(c)
    # kappa == 0 means no configuration has ever succeeded for l (every
    # trial failed): there is no incumbent to retry at a larger sample, so
    # only ECI1 applies — and since failures can be arbitrarily cheap
    # (e.g. an estimator that raises immediately), back off exponentially
    # in the number of failures rather than trusting the wasted cost alone.
    if e2 > 0:
        base = min(state.eci1(), e2)
    else:
        base = max(state.eci1(), 1e-6) * 2.0 ** min(state.n_failures, 30)
    if not np.isfinite(state.best_error) or state.best_error <= global_best_error:
        return max(base, min_eci)
    gap = state.best_error - global_best_error
    if state.delta > 0:
        tau = state.K0 - state.K2
    else:
        tau = state.K0
    delta = state.delta if state.delta > 0 else max(state.best_error, 1e-12)
    # doubled gap-filling cost: improvements have diminishing returns (§4.2)
    catch_up = 2.0 * gap * tau / delta
    return max(max(catch_up, base), min_eci)


class LearnerProposer:
    """Step 1: sample a learner with probability proportional to 1/ECI."""

    def __init__(
        self,
        learners: list[str],
        rng: np.random.Generator,
        c: float = 2.0,
        cost_constants: dict[str, float] | None = None,
        fitted_cost_model: bool = False,
    ) -> None:
        if not learners:
            raise ValueError("need at least one learner")
        self.learners = list(learners)
        self.rng = rng
        self.c = float(c)
        self.cost_constants = dict(DEFAULT_COST_CONSTANTS)
        if cost_constants:
            self.cost_constants.update(cost_constants)
        self.states = {
            name: LearnerCostState(
                name, CostModel() if fitted_cost_model else None
            )
            for name in self.learners
        }
        # the learner with the smallest cost constant runs first and seeds
        # the cost scale for everyone else (appendix)
        self._fastest = min(
            self.learners, key=lambda n: self.cost_constants.get(n, 1.0)
        )
        self._base_cost: float | None = None

    # ------------------------------------------------------------------
    def record(self, learner: str, error: float, cost: float,
               sample_size: int | None = None) -> bool:
        """Feed back a finished trial; returns True if learner improved."""
        if self._base_cost is None and learner == self._fastest:
            self._base_cost = max(float(cost), 1e-9)
        return self.states[learner].update(error, cost, sample_size)

    def _eci_of(self, name: str, global_best: float) -> float:
        st = self.states[name]
        if not st.tried:
            if self._base_cost is None:
                # before the fastest learner has run, force it to go first
                return 1e-12 if name == self._fastest else 1e12
            return self.cost_constants.get(name, 1.0) * self._base_cost
        return eci(st, global_best, self.c)

    def eci_values(self) -> dict[str, float]:
        """Current ECI per learner (for logging / Figure 4)."""
        global_best = self.global_best_error()
        return {n: self._eci_of(n, global_best) for n in self.learners}

    def global_best_error(self) -> float:
        """Lowest validation error observed across all learners."""
        errs = [s.best_error for s in self.states.values() if s.tried]
        return min(errs) if errs else np.inf

    def propose(self) -> str:
        """Sample a learner name with P(l) ∝ 1/ECI(l)."""
        values = self.eci_values()
        inv = np.array([1.0 / max(values[n], 1e-12) for n in self.learners])
        p = inv / inv.sum()
        return self.learners[int(self.rng.choice(len(self.learners), p=p))]

    def propose_argmin(self) -> str:
        """Deterministically pick the lowest-ECI learner (design-choice
        ablation: violates Property 3's FairChance randomisation)."""
        values = self.eci_values()
        return min(self.learners, key=lambda n: values[n])
