"""FLOW2 — the randomised direct search of Wu et al. (AAAI'21), as used by
FLAML's hyperparameter-and-sample-size proposer (paper §4.2, step 2).

The search lives in the unit cube of the learner's search space and needs
only the *relative order* of two trials as feedback:

* start from the low-cost initial configuration;
* at each iteration sample a direction ``u`` uniformly on the unit sphere
  and propose ``best + step*u``; if that does not improve, propose the
  opposite point ``best - step*u``;
* the initial step size is ``0.1 * sqrt(d)`` (upper-bounded by ``sqrt(d)``);
  a winning comparison (a proposal that beats a finite incumbent) doubles
  the step (capped at the upper bound) so runs of wins accelerate; after
  ``2^{d-1}`` (capped) consecutive non-improving iterations the step is
  discounted by the paper's reduction ratio — the ratio between total
  iterations since the last restart and iterations needed to find the
  current best — and clamped at a lower bound; once it sits at the lower
  bound the search has *converged*;
* on convergence the caller may ``restart()`` from a random point to
  escape local optima (FLAML does this and also resets the sample size).

Step-size adaptation is gated by the ``adapt`` argument of :meth:`tell`
because FLAML only adjusts/restarts once the largest sample size is
reached.
"""

from __future__ import annotations

import numpy as np

from .space import SearchSpace

__all__ = ["FLOW2"]


class FLOW2:
    """One randomised-direct-search thread over a :class:`SearchSpace`."""

    #: initial step = STEPSIZE * sqrt(dim)
    STEPSIZE = 0.1

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        init_config: dict | None = None,
        step_lower_bound: float = 1e-2,
    ) -> None:
        self.space = space
        self.rng = np.random.default_rng(seed)
        self.dim = space.dim
        self._step_ub = float(np.sqrt(self.dim))
        self.step_lower_bound = float(step_lower_bound)
        self._init_unit = space.to_unit(init_config or space.init_config())
        # cap the no-improvement budget: 2^(d-1) as in the paper, bounded so
        # high-dimensional spaces still converge within small time budgets
        self.no_improve_threshold = int(2 ** min(self.dim - 1, 4))
        self._reset(self._init_unit)
        self.n_restarts = 0

    # ------------------------------------------------------------------
    def _reset(self, start_unit: np.ndarray) -> None:
        self.best_unit = np.asarray(start_unit, dtype=np.float64)
        self.best_error = np.inf
        self.step = min(self.STEPSIZE * np.sqrt(self.dim), self._step_ub)
        self._num_no_improve = 0
        self._iters_since_restart = 0
        self._iters_to_best = 0
        self._pending_opposite: np.ndarray | None = None
        self._last_direction: np.ndarray | None = None
        self._proposed_init = False

    def restart(self) -> None:
        """Restart from a random point (keeps nothing but the space)."""
        self.n_restarts += 1
        start = self.space.to_unit(self.space.sample(self.rng))
        self._reset(start)

    @property
    def converged(self) -> bool:
        """Whether the step size has decayed to its lower bound."""
        return self.step <= self.step_lower_bound

    @property
    def best_config(self) -> dict:
        """The incumbent (lowest-error) configuration."""
        return self.space.from_unit(self.best_unit)

    # ------------------------------------------------------------------
    def _sphere_direction(self) -> np.ndarray:
        u = self.rng.standard_normal(self.dim)
        norm = np.linalg.norm(u)
        if norm < 1e-12:
            u = np.ones(self.dim)
            norm = np.linalg.norm(u)
        return u / norm

    def propose(self) -> dict:
        """Next configuration to evaluate."""
        if not self._proposed_init or not np.isfinite(self.best_error):
            # first trial evaluates the incumbent itself
            self._proposed_init = True
            self._pending_unit = self.best_unit.copy()
            return self.space.from_unit(self._pending_unit)
        if self._pending_opposite is not None:
            self._pending_unit = self._pending_opposite
            self._pending_opposite = None
            self._last_direction = None
            return self.space.from_unit(self._pending_unit)
        d = self._sphere_direction()
        self._last_direction = d
        self._pending_unit = np.clip(self.best_unit + self.step * d, 0.0, 1.0)
        return self.space.from_unit(self._pending_unit)

    # ------------------------------------------------------------------
    def tell(self, error: float, adapt: bool = True) -> None:
        """Report the error of the last proposed configuration.

        ``adapt=False`` freezes step-size adaptation (used while the sample
        size has not yet reached the full data size).
        """
        self._iters_since_restart += 1
        improved = error < self.best_error
        if improved:
            # a genuine win (beating a finite incumbent, not the first
            # evaluation of the init point) doubles the step, capped at
            # the upper bound — the ONLY way the step ever grows
            if adapt and np.isfinite(self.best_error):
                self.step = min(self.step * 2.0, self._step_ub)
            self.best_error = float(error)
            self.best_unit = self._pending_unit.copy()
            self._iters_to_best = self._iters_since_restart
            self._num_no_improve = 0
            self._pending_opposite = None
            self._last_direction = None
            return
        if self._last_direction is not None:
            # first direction failed: queue the opposite point
            self._pending_opposite = np.clip(
                self.best_unit - self.step * self._last_direction, 0.0, 1.0
            )
            self._last_direction = None
            return
        # both directions failed this round
        self._num_no_improve += 1
        if adapt and self._num_no_improve >= self.no_improve_threshold:
            self._num_no_improve = 0
            ratio = self._iters_since_restart / max(self._iters_to_best, 1)
            # the paper's discount is "a reduction ratio > 1"; clamp so a
            # lucky first iteration cannot collapse the step instantly
            ratio = float(np.clip(ratio, 1.5, 4.0))
            # clamp at the lower bound (convergence = sitting on it)
            # rather than decaying through it
            self.step = max(self.step / ratio, self.step_lower_bound)

    # ------------------------------------------------------------------
    def reset_baseline(self, error: float) -> None:
        """Re-anchor the incumbent error (after a sample-size increase the
        validation error of the incumbent changes scale)."""
        self.best_error = float(error)
