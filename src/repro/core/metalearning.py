"""Lightweight meta-learning: portfolio warm starts for the search.

The paper deliberately ships FLAML *without* meta-learning (§2, §4.1) and
names "leverage meta learning in the cost-optimizing framework without
losing the robustness on ad-hoc datasets" as future work (§6).  This
module implements that future-work item in the spirit the paper sketches:

* an **offline** phase runs FLAML on a corpus of tasks and records, per
  task, the dataset's meta-features and the best configuration found per
  learner (:func:`build_portfolio`);
* an **online** phase maps a new dataset to its nearest corpus neighbours
  in meta-feature space and returns per-learner starting points
  (:meth:`MetaPortfolio.suggest`), which plug straight into
  ``AutoML.fit(starting_points=...)``.

Robustness on ad-hoc data is preserved because the portfolio only moves
FLOW2's *initial point*: the search still explores the full space, the
ECI machinery still rebalances learners from observed cost/error, and a
bad suggestion is abandoned exactly as fast as a bad random restart.  The
online overhead is a handful of vector operations — negligible next to
any trial, keeping the system economical (§4.2 "Advantages").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import Dataset
from ..metrics.registry import Metric, get_metric

__all__ = [
    "meta_features",
    "META_FEATURE_NAMES",
    "PortfolioEntry",
    "MetaPortfolio",
    "build_portfolio",
]

#: order of the components returned by :func:`meta_features`
META_FEATURE_NAMES = (
    "log_n",
    "log_d",
    "log_n_over_d",
    "is_binary",
    "is_multiclass",
    "is_regression",
    "log_n_classes",
    "class_entropy_ratio",
    "frac_skewed_features",
    "mean_abs_feature_corr",
)


def meta_features(data: Dataset, probe_rows: int = 2000,
                  probe_cols: int = 20, seed: int = 0) -> np.ndarray:
    """A 10-vector of cheap dataset meta-features.

    Statistics that need a data pass are computed on a row/column probe
    (first ``probe_rows`` rows of the already-shuffled data, a seeded
    subset of ``probe_cols`` columns) so the cost stays O(probe) and the
    online suggestion adds no measurable overhead even on large inputs.
    """
    n, d = data.n, data.d
    v = np.zeros(len(META_FEATURE_NAMES), dtype=np.float64)
    v[0] = np.log10(max(n, 1))
    v[1] = np.log10(max(d, 1))
    v[2] = np.log10(max(n, 1) / max(d, 1))
    v[3] = 1.0 if data.task == "binary" else 0.0
    v[4] = 1.0 if data.task == "multiclass" else 0.0
    v[5] = 1.0 if data.task == "regression" else 0.0
    if data.is_classification:
        counts = np.unique(data.y, return_counts=True)[1]
        k = counts.size
        v[6] = np.log10(k)
        p = counts / counts.sum()
        # entropy relative to uniform: 1.0 = balanced, -> 0 = degenerate
        v[7] = float(-(p * np.log(p)).sum() / np.log(k)) if k > 1 else 0.0
    X = data.X[: min(probe_rows, n)]
    rng = np.random.default_rng(seed)
    cols = (
        rng.choice(d, size=probe_cols, replace=False) if d > probe_cols
        else np.arange(d)
    )
    Xp = X[:, cols]
    mu = Xp.mean(axis=0)
    sd = Xp.std(axis=0)
    safe = np.where(sd > 0, sd, 1.0)
    skew = ((Xp - mu) ** 3).mean(axis=0) / safe**3
    v[8] = float((np.abs(skew) > 1.0).mean())
    if Xp.shape[1] > 1 and Xp.shape[0] > 2:
        Z = (Xp - mu) / safe
        corr = (Z.T @ Z) / Xp.shape[0]
        off = corr[~np.eye(corr.shape[0], dtype=bool)]
        v[9] = float(np.abs(off).mean())
    return v


@dataclass
class PortfolioEntry:
    """One corpus task: its meta-features and best per-learner configs."""

    dataset: str
    features: np.ndarray
    best_configs: dict[str, dict]  # learner -> config
    best_learner: str
    best_error: float

    def to_json(self) -> dict:
        """JSON-serialisable form."""
        return {
            "dataset": self.dataset,
            "features": [float(x) for x in self.features],
            "best_configs": self.best_configs,
            "best_learner": self.best_learner,
            "best_error": float(self.best_error),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "PortfolioEntry":
        """Inverse of :meth:`to_json`."""
        return cls(
            dataset=obj["dataset"],
            features=np.asarray(obj["features"], dtype=np.float64),
            best_configs={k: dict(v) for k, v in obj["best_configs"].items()},
            best_learner=obj["best_learner"],
            best_error=float(obj["best_error"]),
        )


@dataclass
class MetaPortfolio:
    """Nearest-neighbour retrieval over offline portfolio entries."""

    entries: list[PortfolioEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._refresh_norm()

    def _refresh_norm(self) -> None:
        if self.entries:
            F = np.stack([e.features for e in self.entries])
            self._mu = F.mean(axis=0)
            sd = F.std(axis=0)
            self._sd = np.where(sd > 0, sd, 1.0)
            self._F = (F - self._mu) / self._sd
        else:
            self._F = None

    def add(self, entry: PortfolioEntry) -> None:
        """Add one corpus task and refresh the normalisation."""
        self.entries.append(entry)
        self._refresh_norm()

    def __len__(self) -> int:
        return len(self.entries)

    def nearest(self, data: Dataset, k: int = 3) -> list[PortfolioEntry]:
        """The k corpus tasks closest to ``data`` in meta-feature space.

        Tasks of a different task type are pushed away by the one-hot
        components, so a regression query retrieves regression neighbours
        whenever any exist.
        """
        if not self.entries:
            raise ValueError("empty portfolio")
        q = (meta_features(data) - self._mu) / self._sd
        dist = np.sqrt(((self._F - q) ** 2).sum(axis=1))
        order = np.argsort(dist, kind="stable")[: max(1, k)]
        return [self.entries[i] for i in order]

    def suggest(self, data: Dataset, k: int = 3) -> dict[str, dict]:
        """Per-learner starting points for ``AutoML.fit(starting_points=...)``.

        Walks the k nearest corpus tasks in distance order and keeps the
        first (i.e. nearest) config seen for each learner.
        """
        points: dict[str, dict] = {}
        for entry in self.nearest(data, k):
            for learner, cfg in entry.best_configs.items():
                points.setdefault(learner, dict(cfg))
        return points

    def suggest_estimator_priority(self, data: Dataset, k: int = 3) -> list[str]:
        """Learners ranked by how often they won among the k neighbours."""
        wins: dict[str, int] = {}
        for entry in self.nearest(data, k):
            wins[entry.best_learner] = wins.get(entry.best_learner, 0) + 1
        return sorted(wins, key=lambda n: -wins[n])

    # -- persistence ----------------------------------------------------
    def save(self, path: str) -> None:
        """Write the portfolio to a JSON file."""
        with open(path, "w") as f:
            json.dump({"entries": [e.to_json() for e in self.entries]}, f, indent=1)

    @classmethod
    def load(cls, path: str) -> "MetaPortfolio":
        """Read a portfolio written by :meth:`save`."""
        with open(path) as f:
            obj = json.load(f)
        return cls([PortfolioEntry.from_json(e) for e in obj["entries"]])


def build_portfolio(
    datasets: list[tuple[str, Dataset]],
    time_budget: float = 2.0,
    metric: str | Metric = "auto",
    seed: int = 0,
    init_sample_size: int = 1000,
    max_iters: int | None = None,
) -> MetaPortfolio:
    """Offline phase: run FLAML on each corpus task, harvest best configs.

    ``datasets`` is a list of (name, Dataset) pairs — e.g. drawn from
    ``repro.data.suite``.  The per-task budget is deliberately small: the
    portfolio only needs *good starting points*, not converged searches.
    """
    from .automl import AutoML  # late import: automl imports this module's peers

    portfolio = MetaPortfolio()
    for name, data in datasets:
        automl = AutoML(seed=seed, init_sample_size=init_sample_size)
        automl.fit(
            data.X,
            data.y,
            task=data.task,
            time_budget=time_budget,
            metric=metric,
            retrain_full=False,
            max_iters=max_iters,
        )
        portfolio.add(
            PortfolioEntry(
                dataset=name,
                features=meta_features(data),
                best_configs=automl.best_config_per_estimator,
                best_learner=automl.best_estimator,
                best_error=automl.best_loss,
            )
        )
    return portfolio
