"""The AutoML controller: steps 0-3 of Figure 3 in a budgeted loop.

Per iteration:

0. (once) the resampling proposer fixes r via the thresholding rule;
1. the learner proposer samples l with P ∝ 1/ECI(l);
2. the per-learner search thread proposes (h, s) — either a FLOW2 step at
   the current sample size or the incumbent config at a grown sample;
3. the trial runs, and (ε̃, κ) feed back into the ECI state and FLOW2.

The controller also implements the ablation variants of §5.2 as flags:
``learner_selection='roundrobin'``, ``use_sampling=False`` (fulldata), and
``resampling_override='cv'`` — used by
``repro.baselines.flaml_system.make_ablation``.

Trials are submitted through the :mod:`repro.exec` engine rather than
executed inline: the backend is pluggable (serial here — this loop is
sequential by design; :class:`~repro.core.parallel.ParallelSearchController`
drives thread/process pools) and an LRU trial cache short-circuits
repeated proposals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import Dataset
from ..exec import (
    ExecutionEngine,
    RetryPolicy,
    SerialExecutor,
    TrialCache,
    TrialExecutor,
    TrialSpec,
)
from ..metrics.registry import Metric
from .eci import LearnerProposer
from .registry import LearnerSpec
from .resampling import resolve_resampling
from .searchstate import SearchThread

__all__ = ["TrialRecord", "SearchResult", "SearchController"]


@dataclass
class TrialRecord:
    """One row of the trial log (Figure 1 / Table 3 are drawn from these)."""

    iteration: int
    automl_time: float  # total time from start when the trial finished
    learner: str
    config: dict
    sample_size: int
    resampling: str
    error: float  # validation error ε̃
    cost: float  # trial cost κ (seconds)
    kind: str  # 'search' | 'sample_up'
    improved_global: bool
    eci_snapshot: dict[str, float] = field(default_factory=dict)
    #: formatted traceback (or engine reason) when the trial failed;
    #: ``None`` for successful trials
    failure: str | None = None
    #: total executions of this trial (> 1 when the engine's RetryPolicy
    #: re-ran it after a crash or timeout); the failure text of a trial
    #: that exhausted its retries also carries the backoff history
    attempts: int = 1


@dataclass
class SearchResult:
    """Outcome of a controller run.

    ``cache_hits`` counts trials answered by the trial cache without any
    training; ``backend``/``n_workers`` record the execution substrate
    the search ran on.
    """

    best_learner: str | None
    best_config: dict | None
    best_sample_size: int
    best_error: float
    resampling: str
    trials: list[TrialRecord]
    wall_time: float
    best_model: object | None = None
    cache_hits: int = 0
    backend: str = "serial"
    n_workers: int = 1

    @property
    def n_trials(self) -> int:
        """Number of trials recorded in the log."""
        return len(self.trials)

    @property
    def failures(self) -> list[TrialRecord]:
        """The trials that failed (each carries its formatted traceback
        in ``.failure``), in log order."""
        return [t for t in self.trials if t.failure is not None]


class LearnerSelectionMixin:
    """Step 1, shared by the sequential and parallel controllers: pick
    the next learner under ``learner_selection`` ('eci' samples with
    P ∝ 1/ECI; the other modes are the §5.2 ablations).

    Requires ``self.learners``, ``self.proposer``, ``self.learner_selection``
    and an ``self._rr_index`` roundrobin pointer.
    """

    SELECTION_MODES = ("eci", "roundrobin", "eci-argmin")

    @classmethod
    def check_selection(cls, learner_selection: str) -> None:
        """Validate a ``learner_selection`` mode name."""
        if learner_selection not in cls.SELECTION_MODES:
            raise ValueError(f"unknown learner_selection {learner_selection!r}")

    def _next_learner(self) -> str:
        if self.learner_selection == "roundrobin":
            names = list(self.learners)
            name = names[self._rr_index % len(names)]
            self._rr_index += 1
            return name
        if self.learner_selection == "eci-argmin":
            return self.proposer.propose_argmin()
        return self.proposer.propose()


class SearchController(LearnerSelectionMixin):
    """Budget-constrained trial loop over a set of learners."""

    def __init__(
        self,
        data: Dataset,
        learners: dict[str, LearnerSpec],
        metric: Metric,
        time_budget: float = 60.0,
        seed: int = 0,
        init_sample_size: int = 10_000,
        sample_growth: float = 2.0,
        n_splits: int = 5,
        holdout_ratio: float = 0.1,
        learner_selection: str = "eci",
        use_sampling: bool = True,
        resampling_override: str | None = None,
        random_init: bool = False,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_iters: int | None = None,
        keep_models: bool = False,
        stop_at_error: float | None = None,
        starting_points: dict[str, dict] | None = None,
        fitted_cost_model: bool = False,
        executor: TrialExecutor | None = None,
        trial_cache: TrialCache | bool = True,
        trial_time_limit: float | None = None,
        horizon: int = 1,
        seasonal_period: int | None = None,
        retry_policy: RetryPolicy | None = None,
        stop_event=None,
        tenant: str | None = None,
    ) -> None:
        self.check_selection(learner_selection)
        if time_budget <= 0:
            raise ValueError("time_budget must be positive")
        if not learners:
            raise ValueError("need at least one learner")
        self.data = data
        self.learners = dict(learners)
        self.metric = metric
        self.time_budget = float(time_budget)
        self.seed = int(seed)
        self.n_splits = n_splits
        self.holdout_ratio = holdout_ratio
        self.learner_selection = learner_selection
        self.max_iters = max_iters
        self.keep_models = keep_models
        self.horizon = max(1, int(horizon))
        self.seasonal_period = seasonal_period
        # appendix: "one may search for the cheapest model with error below
        # a threshold" — stop as soon as the target error is reached
        self.stop_at_error = stop_at_error
        self.stop_event = stop_event  # cooperative cancel (fit service)

        self.rng = np.random.default_rng(seed)
        # step 0: resampling strategy (fixed for the run) plus the
        # sample-size ceiling the search threads grow toward
        self.resampling, self._thread_full_size = resolve_resampling(
            data.n, data.d, data.task, time_budget,
            override=resampling_override,
            instance_threshold=cv_instance_threshold,
            rate_threshold=cv_rate_threshold,
            horizon=self.horizon,
        )
        names = list(self.learners)
        self.proposer = LearnerProposer(
            names, self.rng, c=sample_growth,
            cost_constants={n: s.cost_constant for n, s in self.learners.items()},
            # §4.2 ECI₂ refinement: learn cost-vs-sample-size exponents
            # online instead of assuming linear training complexity
            fitted_cost_model=fitted_cost_model,
        )
        self.threads = {
            n: SearchThread(
                n,
                spec.space_fn(self._thread_full_size, data.task),
                full_size=self._thread_full_size,
                init_sample_size=init_sample_size,
                sample_growth=sample_growth,
                seed=seed + i,
                use_sampling=use_sampling,
                random_init=random_init,
                starting_point=(starting_points or {}).get(n),
            )
            for i, (n, spec) in enumerate(self.learners.items())
        }
        self._labels = np.unique(data.y) if data.is_classification else None
        self._rr_index = 0  # roundrobin pointer
        # trials go through the execution engine: a pluggable backend
        # (serial by default — this controller's loop is sequential) plus
        # the trial cache that makes repeated proposals free
        own_executor = executor is None
        if isinstance(trial_cache, TrialCache):
            cache = trial_cache
        else:
            cache = TrialCache() if trial_cache else None
        self.engine = ExecutionEngine(
            executor if executor is not None else SerialExecutor(data),
            cache=cache,
            trial_time_limit=trial_time_limit,
            own_executor=own_executor,
            retry_policy=retry_policy,
            tenant=tenant,
        )

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Execute the budgeted trial loop and return the SearchResult."""
        try:
            return self._run()
        finally:
            self.engine.shutdown()

    def _run(self) -> SearchResult:
        start = time.perf_counter()
        trials: list[TrialRecord] = []
        best_error = np.inf
        best = (None, None, 0)  # learner, config, sample_size
        best_model = None
        it = 0
        while True:
            elapsed = time.perf_counter() - start
            if elapsed >= self.time_budget:
                break
            if self.max_iters is not None and it >= self.max_iters:
                break
            if self.stop_event is not None and self.stop_event.is_set():
                break
            it += 1
            learner = self._next_learner()
            thread = self.threads[learner]
            config, s, kind = thread.propose(self.proposer.states[learner])
            remaining = self.time_budget - (time.perf_counter() - start)
            if self.engine.trial_time_limit is not None:
                remaining = min(remaining, self.engine.trial_time_limit)
            spec = TrialSpec(
                learner=learner,
                estimator_cls=self.learners[learner].estimator_cls(self.data.task),
                config=config,
                sample_size=s,
                resampling=self.resampling,
                metric=self.metric,
                n_splits=self.n_splits,
                holdout_ratio=self.holdout_ratio,
                seed=self.seed,
                train_time_limit=max(remaining, 0.01),
                labels=self._labels,
                horizon=self.horizon,
                seasonal_period=self.seasonal_period,
            )
            outcome = self.engine.run(spec)
            thread.tell(outcome.error)
            self.proposer.record(learner, outcome.error, outcome.cost,
                                 sample_size=s)
            improved = outcome.error < best_error
            if improved:
                best_error = outcome.error
                best = (learner, config, s)
                if self.keep_models:
                    best_model = outcome.model
            trials.append(
                TrialRecord(
                    iteration=it,
                    automl_time=time.perf_counter() - start,
                    learner=learner,
                    config=dict(config),
                    sample_size=s,
                    resampling=self.resampling,
                    error=outcome.error,
                    cost=outcome.cost,
                    kind=kind,
                    improved_global=improved,
                    eci_snapshot=self.proposer.eci_values(),
                    failure=outcome.failure,
                    attempts=getattr(outcome, "attempts", 1),
                )
            )
            if self.stop_at_error is not None and best_error <= self.stop_at_error:
                break
        return SearchResult(
            best_learner=best[0],
            best_config=best[1],
            best_sample_size=best[2],
            best_error=float(best_error),
            resampling=self.resampling,
            trials=trials,
            wall_time=time.perf_counter() - start,
            best_model=best_model,
            cache_hits=self.engine.cache_hits,
            backend=self.engine.backend,
            n_workers=self.engine.n_workers,
        )
