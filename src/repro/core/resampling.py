"""Step 0: the resampling-strategy proposer (paper §4.2).

A simple thresholding rule implementing Property 2 (Resample):
cross-validation when the data is small or the budget generous, holdout
otherwise.  The paper's thresholds are "fewer than 100K instances" and
"#instances x #features / budget < 10M per hour"; both are exposed as
parameters so the scaled-down benchmark suite can scale them too
(DESIGN.md §2).

Forecasting tasks get a third strategy, ``"temporal"``: rolling-origin
cross-validation via :class:`TemporalSplitter`, whose folds train
strictly on the past and validate strictly on the future — random
k-fold or holdout splits would leak future values into training.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "choose_resampling",
    "resolve_resampling",
    "TemporalSplitter",
    "PAPER_INSTANCE_THRESHOLD",
    "PAPER_RATE_THRESHOLD",
]

PAPER_INSTANCE_THRESHOLD = 100_000
#: 10M per hour, expressed per second
PAPER_RATE_THRESHOLD = 10e6 / 3600.0


def choose_resampling(
    n_instances: int,
    n_features: int,
    budget: float,
    instance_threshold: int = PAPER_INSTANCE_THRESHOLD,
    rate_threshold: float = PAPER_RATE_THRESHOLD,
) -> str:
    """Return ``"cv"`` or ``"holdout"`` via the paper's thresholding rule."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    if n_instances < instance_threshold and (
        n_instances * n_features / budget < rate_threshold
    ):
        return "cv"
    return "holdout"


def resolve_resampling(
    n_instances: int,
    n_features: int,
    task: str,
    budget: float,
    override: str | None = None,
    instance_threshold: int = PAPER_INSTANCE_THRESHOLD,
    rate_threshold: float = PAPER_RATE_THRESHOLD,
    horizon: int = 1,
) -> tuple[str, int]:
    """Step 0 as both controllers run it: ``(strategy, full_size)``.

    An explicit ``override`` wins; forecast tasks always use
    rolling-origin temporal CV (random splits would train on the
    future); everything else goes through the paper's thresholding rule.
    ``full_size`` is the sample-size ceiling the search threads grow
    toward — under temporal CV the largest fold trains on at most
    ``n - horizon`` rows, so growing past that would only re-run
    identical trials and burn budget on cache hits.
    """
    if override is not None:
        strategy = override
    elif task == "forecast":
        strategy = "temporal"
    else:
        strategy = choose_resampling(
            n_instances, n_features, budget,
            instance_threshold=instance_threshold,
            rate_threshold=rate_threshold,
        )
    full_size = (
        max(1, n_instances - max(1, int(horizon)))
        if strategy == "temporal" else n_instances
    )
    return strategy, full_size


@dataclass(frozen=True)
class TemporalSplitter:
    """Rolling-origin (expanding-window) CV for ordered series.

    ``split(n)`` yields ``n_splits`` folds over row indices ``0..n-1``.
    The validation windows are the last ``n_splits * horizon`` indices in
    consecutive blocks of ``horizon``; each fold trains on *every* index
    before its validation block.  Two invariants hold by construction
    (and are property-tested):

    * **no leakage** — ``max(train) < min(test)`` in every fold;
    * **tail coverage** — the fold validation blocks tile the series
      tail exactly, ending at index ``n - 1``.
    """

    n_splits: int = 5
    horizon: int = 1
    min_train: int = 1

    def __post_init__(self) -> None:
        if self.n_splits < 1:
            raise ValueError(f"n_splits must be >= 1, got {self.n_splits}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.min_train < 1:
            raise ValueError(f"min_train must be >= 1, got {self.min_train}")

    def split(self, n: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """(train, validation) index arrays for a series of length ``n``.

        Memoized per (n_splits, horizon, min_train, n): a 500-trial
        forecast search re-splits the same series once per trial, so the
        index arrays are computed exactly once and shared read-only.
        """
        n = int(n)
        needed = self.n_splits * self.horizon + self.min_train
        if n < needed:
            raise ValueError(
                f"series of length {n} cannot support {self.n_splits} "
                f"rolling-origin folds of horizon {self.horizon} with at "
                f"least {self.min_train} training rows (needs >= {needed})"
            )
        return list(_temporal_folds(self.n_splits, self.horizon, n))


@lru_cache(maxsize=256)
def _temporal_folds(n_splits: int, horizon: int, n: int):
    """Shared (train, validation) arrays behind TemporalSplitter.split."""
    out = []
    for i in range(n_splits):
        test_start = n - (n_splits - i) * horizon
        tr = np.arange(0, test_start)
        va = np.arange(test_start, test_start + horizon)
        tr.flags.writeable = False
        va.flags.writeable = False
        out.append((tr, va))
    return tuple(out)
