"""Step 0: the resampling-strategy proposer (paper §4.2).

A simple thresholding rule implementing Property 2 (Resample):
cross-validation when the data is small or the budget generous, holdout
otherwise.  The paper's thresholds are "fewer than 100K instances" and
"#instances x #features / budget < 10M per hour"; both are exposed as
parameters so the scaled-down benchmark suite can scale them too
(DESIGN.md §2).
"""

from __future__ import annotations

__all__ = ["choose_resampling", "PAPER_INSTANCE_THRESHOLD", "PAPER_RATE_THRESHOLD"]

PAPER_INSTANCE_THRESHOLD = 100_000
#: 10M per hour, expressed per second
PAPER_RATE_THRESHOLD = 10e6 / 3600.0


def choose_resampling(
    n_instances: int,
    n_features: int,
    budget: float,
    instance_threshold: int = PAPER_INSTANCE_THRESHOLD,
    rate_threshold: float = PAPER_RATE_THRESHOLD,
) -> str:
    """Return ``"cv"`` or ``"holdout"`` via the paper's thresholding rule."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    if n_instances < instance_threshold and (
        n_instances * n_features / budget < rate_threshold
    ):
        return "cv"
    return "holdout"
