"""The public scikit-learn-style API (paper §3):

    from repro import AutoML
    automl = AutoML()
    automl.fit(X_train, y_train, task="classification", time_budget=60)
    prediction = automl.predict(X_test)

``fit`` runs the full FLAML search (steps 0-3 of Figure 3) and then
retrains the best configuration on all training data.  Custom learners
and custom metrics plug in exactly as in the paper's listing:

    automl.add_learner(learner_name="mylearner", learner_class=MyLearner)
    automl.fit(X, y, metric=my_metric, time_budget=60,
               estimator_list=["mylearner", "xgboost"])
"""

from __future__ import annotations

import time

import numpy as np

from ..data.dataset import Dataset
from ..metrics.registry import Metric, get_metric
from .controller import SearchController, SearchResult
from .evaluate import _make_estimator
from .registry import (
    DEFAULT_LEARNERS,
    EXTRA_LEARNERS,
    LearnerSpec,
    make_spec_from_class,
)

__all__ = ["AutoML", "infer_task"]


def infer_task(y: np.ndarray, task: str | None) -> str:
    """Resolve the user-facing task string to
    binary|multiclass|regression|forecast."""
    if task in ("binary", "multiclass", "regression"):
        return task
    y = np.asarray(y)
    if task == "forecast":
        if y.dtype.kind not in "fiu":
            raise ValueError(
                "task='forecast' requires a numeric series as y, got dtype "
                f"{y.dtype}; pass the observed values in time order"
            )
        return "forecast"
    if task == "classification":
        return "binary" if np.unique(y).size == 2 else "multiclass"
    if task is None or task == "auto":
        if y.dtype.kind in "mM":
            raise ValueError(
                f"cannot infer a task from datetime-like labels (dtype "
                f"{y.dtype}): timestamps are not a prediction target. For "
                "time-series forecasting pass the observed *values* as y "
                "with task='forecast'; otherwise encode the timestamps "
                "numerically and pass task='regression'"
            )
        if y.dtype.kind == "O":
            raise ValueError(
                "cannot infer a task from object-dtype labels: mixed or "
                "arbitrary Python objects are ambiguous. Convert y to a "
                "numeric array (regression/forecast) or to homogeneous "
                "string/int class labels (classification), or pass task= "
                "explicitly"
            )
        if y.dtype.kind in "USb":
            return "binary" if np.unique(y).size == 2 else "multiclass"
        uniq = np.unique(y)
        if uniq.size <= max(20, int(0.05 * y.size)) and np.allclose(
            uniq, np.round(uniq)
        ):
            return "binary" if uniq.size == 2 else "multiclass"
        return "regression"
    raise ValueError(f"unknown task {task!r}")


def _starting_points_from(source) -> dict[str, dict]:
    """Best config per learner out of a prior run (``fit(resume_from=...)``).

    ``source`` may be a SearchResult, a fitted AutoML instance, or the
    path of a trial-log JSON written via ``fit(log_file=...)``.
    """
    if isinstance(source, str):
        from .serialize import load_result

        source = load_result(source)
    if isinstance(source, AutoML):
        source = source.search_result
    if not isinstance(source, SearchResult):
        raise TypeError(
            "resume_from must be a SearchResult, a fitted AutoML, or a "
            f"trial-log path; got {type(source).__name__}"
        )
    best: dict[str, tuple[float, dict]] = {}
    for t in source.trials:
        if not np.isfinite(t.error):
            continue
        cur = best.get(t.learner)
        if cur is None or t.error < cur[0]:
            best[t.learner] = (t.error, dict(t.config))
    return {name: cfg for name, (_, cfg) in best.items()}


class AutoML:
    """Fast and lightweight AutoML: economical learner/hyperparameter search.

    Parameters of interest (all overridable per-``fit``):

    seed:
        Seed for every stochastic component.
    init_sample_size:
        Starting sample size per learner (paper: 10K).
    sample_growth:
        Multiplicative sample-size factor c (paper: 2).
    """

    def __init__(self, seed: int = 0, init_sample_size: int = 10_000,
                 sample_growth: float = 2.0) -> None:
        self.seed = int(seed)
        self.init_sample_size = int(init_sample_size)
        self.sample_growth = float(sample_growth)
        self._custom_learners: dict[str, LearnerSpec] = {}
        self._result: SearchResult | None = None
        self._model = None
        self._task: str | None = None

    # ------------------------------------------------------------------
    def add_learner(self, learner_name: str, learner_class: type) -> None:
        """Register a custom estimator class for use in ``estimator_list``.

        The class must implement fit/predict (and predict_proba for
        classification), plus a classmethod
        ``search_space(data_size, task) -> SearchSpace``; an optional
        ``cost_relative2lgbm`` attribute seeds its ECI (default 1.0).
        """
        self._custom_learners[learner_name] = make_spec_from_class(
            learner_name, learner_class
        )

    def _resolve_learners(self, estimator_list, task: str) -> dict[str, LearnerSpec]:
        available = {**EXTRA_LEARNERS, **DEFAULT_LEARNERS, **self._custom_learners}
        if estimator_list in (None, "auto"):
            # the default list is exactly the paper's learners (plus any
            # user-registered customs); EXTRA_LEARNERS need explicit mention
            defaults = {**DEFAULT_LEARNERS, **self._custom_learners}
            names = [n for n, s in defaults.items() if s.supports(task)]
        else:
            names = list(estimator_list)
        out = {}
        for n in names:
            if n not in available:
                raise ValueError(
                    f"unknown estimator {n!r}; known: {sorted(available)}"
                )
            if not available[n].supports(task):
                raise ValueError(f"estimator {n!r} does not support task {task!r}")
            out[n] = available[n]
        if not out:
            raise ValueError("estimator_list resolved to no learners")
        return out

    # ------------------------------------------------------------------
    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        task: str | None = None,
        time_budget: float = 60.0,
        metric: str | Metric = "auto",
        estimator_list=None,
        seed: int | None = None,
        n_splits: int = 5,
        holdout_ratio: float = 0.1,
        resampling: str | None = None,
        learner_selection: str = "eci",
        use_sampling: bool = True,
        retrain_full: bool = True,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_iters: int | None = None,
        ensemble: bool = False,
        ensemble_members: int = 4,
        stop_at_error: float | None = None,
        starting_points: dict | None = None,
        resume_from=None,
        fitted_cost_model: bool = False,
        preprocessor=None,
        log_file: str | None = None,
        n_workers: int = 1,
        backend: str | None = None,
        trial_cache=True,
        trial_time_limit: float | None = None,
        horizon: int = 1,
        seasonal_period: int | None = None,
        retries: int = 0,
        retry_budget: int | None = None,
        executor_factory=None,
        stop_event=None,
        tenant: str | None = None,
    ) -> "AutoML":
        """Search for an accurate model within ``time_budget`` seconds.

        ``resampling`` forces 'cv' or 'holdout' (default: the paper's
        thresholding rule).  ``learner_selection``/``use_sampling`` expose
        the §5.2 ablations.  ``ensemble=True`` enables the appendix's
        stacked-ensemble post-processing (extra cost after the search);
        ``stop_at_error`` stops the search once the validation error
        reaches the target ("cheapest model below a threshold").
        ``preprocessor`` is one object — or a list applied in order — with
        the fit_transform/transform contract (footnote 2: e.g. the
        classes in :mod:`repro.data.preprocessing`); it is fitted on the
        training data here and re-applied inside predict/predict_proba.
        ``resume_from`` warm-resumes from an earlier run — a
        ``SearchResult``, a trial-log JSON path (``log_file`` output), or
        a previously fitted ``AutoML`` — by seeding each learner's FLOW2
        with that run's best config (the §1 scenario of re-tuning on
        refreshed data); explicit ``starting_points`` win on conflicts.

        ``n_workers``/``backend`` choose the trial-execution substrate
        (:mod:`repro.exec`): the default is the sequential controller on
        the serial backend; ``n_workers > 1`` runs up to that many trials
        concurrently on a ``"thread"`` (default) or ``"process"`` pool —
        ``"process"`` gives true multi-core parallelism but requires
        picklable learners/metrics — and ``backend="virtual"`` simulates
        ``n_workers`` workers on a virtual clock.  Parallel backends do
        not retain evaluated models, so ``retrain_full=False`` only
        takes effect on the default sequential path; with ``n_workers >
        1`` the winner is always retrained on the full data.
        ``executor_factory`` hands trial execution to an external
        substrate: it is called with the prepared (shuffled,
        preprocessed) :class:`~repro.data.dataset.Dataset` and must
        return a :class:`~repro.exec.TrialExecutor` — e.g. a
        ``SharedWorkerPool.lease(...)`` so many concurrent ``fit`` calls
        multiplex one pool (the multi-tenant fit service).  The executor
        names the backend; ``stop_event`` (a ``threading.Event``)
        cancels the search cooperatively between trials; ``tenant``
        labels this search's ``repro_tenant_*`` metrics.
        ``trial_cache`` enables the LRU trial cache (repeated proposals
        are free; see ``search_result.cache_hits``) — pass a
        :class:`~repro.exec.TrialCache` *instance* to share one store
        across searches (keys are dataset-fingerprint-scoped, so equal
        datasets hit across tenants and different datasets never
        collide) — and
        ``trial_time_limit`` bounds any single trial in seconds — a hard
        limit on thread/process backends (an overdue trial is abandoned
        as inf-error), advisory on serial/virtual ones, where trials run
        inline and stop early only if the learner honours its
        ``train_time_limit``.

        ``retries`` re-runs a trial that *crashed* (worker death,
        infrastructure error) or *timed out* up to that many extra times
        with exponential backoff before committing an inf-error — a
        deterministic learner exception is never retried.
        ``retry_budget`` caps the total retries spent across the whole
        search (default: unlimited).  Retried trials record their
        attempt count in the trial log (``SearchResult.failures`` /
        ``fit --verbose``).

        ``task="forecast"`` treats ``y_train`` as an ordered univariate
        series (``X_train`` may be ``None``; exogenous columns are
        carried but the reduction is autoregressive): trials are scored
        by rolling-origin temporal CV at the given ``horizon`` (never on
        the future), the lag featurization is searched jointly with each
        learner's hyperparameters, and ``seasonal_period`` adds a
        seasonal lag feature and sets the MASE scale.  Predict with
        ``predict(horizon=...)``.  Returns ``self``.
        """
        seed = self.seed if seed is None else int(seed)
        t0 = time.perf_counter()
        y_train = np.asarray(y_train)
        self._task = infer_task(y_train, task)
        if self._task != "forecast" and (horizon != 1 or seasonal_period):
            raise ValueError(
                "horizon/seasonal_period only apply to task='forecast', "
                f"but the task resolved to {self._task!r}"
            )
        self._horizon = max(1, int(horizon))
        self._seasonal_period = int(seasonal_period) if seasonal_period else None
        if self._task == "forecast":
            if preprocessor is not None:
                raise ValueError(
                    "preprocessor is not supported for task='forecast': "
                    "featurization (lags/windows/differencing) is part of "
                    "the searched trial config"
                )
            if resampling not in (None, "temporal"):
                raise ValueError(
                    f"task='forecast' requires resampling='temporal', got "
                    f"{resampling!r} — random splits would train on the "
                    "future"
                )
            if ensemble:
                raise ValueError(
                    "stacked ensembles are not supported for task='forecast'"
                )
            y_train = y_train.astype(np.float64)
            if X_train is None:
                X_train = np.arange(y_train.size,
                                    dtype=np.float64).reshape(-1, 1)
            X_train = np.asarray(X_train, dtype=np.float64)
            self._preprocessor = []
            self._n_features_in = (
                int(X_train.shape[1]) if X_train.ndim == 2 else None
            )
            # time order is the whole point: never shuffle a series
            data = Dataset("train", X_train, y_train, "forecast")
        else:
            if X_train is None:
                raise TypeError(
                    "X_train is required (it is optional only for "
                    "task='forecast')"
                )
            X_train = np.asarray(X_train, dtype=np.float64)
            self._n_features_in = (
                int(X_train.shape[1]) if X_train.ndim == 2 else None
            )
            self._preprocessor = (
                list(preprocessor)
                if isinstance(preprocessor, (list, tuple))
                else ([preprocessor] if preprocessor is not None else [])
            )
            for step in self._preprocessor:
                X_train = step.fit_transform(X_train)
            data = Dataset("train", X_train, y_train, self._task).shuffled(seed)
        from ..exec.engine import dataset_token

        fp = dataset_token(data)
        self._data_fingerprint = {
            "name": fp[0], "task": fp[1], "n": fp[2], "d": fp[3],
            "crc32": fp[4],
        }
        metric_obj = get_metric(metric, task=self._task)
        if (
            self._task == "forecast"
            and self._seasonal_period
            and metric in ("auto", "mase")
        ):
            # seasonal MASE: scale by the in-sample seasonal-naive error
            from ..metrics.forecast import mase_metric

            metric_obj = mase_metric(self._seasonal_period)
        learners = self._resolve_learners(estimator_list, self._task)
        if self._task == "forecast":
            from .registry import forecast_spec

            # lag structure becomes part of every learner's search space
            learners = {n: forecast_spec(s) for n, s in learners.items()}
        if resume_from is not None:
            resumed = _starting_points_from(resume_from)
            starting_points = {**resumed, **(starting_points or {})}
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        executor = None
        if executor_factory is not None:
            # the lease must bind to the *prepared* dataset (shuffled /
            # preprocessed above) — hence a factory, not an instance
            executor = executor_factory(data)
            if backend is None:
                backend = getattr(executor, "backend", "shared")
        if backend is None:
            backend = "serial" if n_workers == 1 else "thread"
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        retry_policy = None
        if retries > 0:
            from ..exec import RetryPolicy

            retry_policy = RetryPolicy(
                max_attempts=int(retries) + 1, retry_budget=retry_budget
            )
        if backend == "serial" and n_workers == 1 and executor is None:
            controller = SearchController(
                data,
                learners,
                metric_obj,
                time_budget=time_budget,
                seed=seed,
                init_sample_size=self.init_sample_size,
                sample_growth=self.sample_growth,
                n_splits=n_splits,
                holdout_ratio=holdout_ratio,
                learner_selection=learner_selection,
                use_sampling=use_sampling,
                resampling_override=resampling,
                cv_instance_threshold=cv_instance_threshold,
                cv_rate_threshold=cv_rate_threshold,
                max_iters=max_iters,
                keep_models=not retrain_full,
                stop_at_error=stop_at_error,
                starting_points=starting_points,
                fitted_cost_model=fitted_cost_model,
                trial_cache=trial_cache,
                trial_time_limit=trial_time_limit,
                horizon=self._horizon,
                seasonal_period=self._seasonal_period,
                retry_policy=retry_policy,
                stop_event=stop_event,
                tenant=tenant,
            )
        else:
            from .parallel import ParallelSearchController

            controller = ParallelSearchController(
                data,
                learners,
                metric_obj,
                time_budget=time_budget,
                n_workers=n_workers,
                seed=seed,
                init_sample_size=self.init_sample_size,
                sample_growth=self.sample_growth,
                n_splits=n_splits,
                holdout_ratio=holdout_ratio,
                learner_selection=learner_selection,
                use_sampling=use_sampling,
                resampling_override=resampling,
                cv_instance_threshold=cv_instance_threshold,
                cv_rate_threshold=cv_rate_threshold,
                max_trials=max_iters if max_iters is not None else 10_000,
                stop_at_error=stop_at_error,
                starting_points=starting_points,
                fitted_cost_model=fitted_cost_model,
                backend=backend,
                executor=executor,
                trial_cache=trial_cache,
                trial_time_limit=trial_time_limit,
                horizon=self._horizon,
                seasonal_period=self._seasonal_period,
                retry_policy=retry_policy,
                stop_event=stop_event,
                tenant=tenant,
            )
        self._result = controller.run()
        if log_file:
            from .serialize import save_result

            save_result(self._result, log_file)
        self._metric = metric_obj
        if self._result.best_learner is None:
            raise RuntimeError(
                "search produced no successful trial within the budget; "
                "increase time_budget"
            )
        if ensemble:
            from .ensemble import build_ensemble, select_ensemble_members

            members = select_ensemble_members(
                self._result, max_members=ensemble_members
            )
            self._model = build_ensemble(
                data, members, learners, n_splits=n_splits, seed=seed,
                train_time_limit=time_budget,
            )
            return self
        if retrain_full or self._result.best_model is None:
            spec = learners[self._result.best_learner]
            est_cls = spec.estimator_cls(self._task)
            # bound the retrain so fit() does not blow far past the budget
            retrain_limit = max(time_budget, 3 * (time.perf_counter() - t0) / 10)
            if self._task == "forecast":
                from ..data.timeseries import ForecastModel, \
                    featurizer_from_config, split_forecast_config

                base_cfg, fc_cfg = split_forecast_config(
                    self._result.best_config
                )
                featurizer = featurizer_from_config(
                    fc_cfg, self._seasonal_period
                )
                base = _make_estimator(est_cls, base_cfg, seed, retrain_limit)
                self._model = ForecastModel(
                    base, featurizer, horizon=self._horizon
                ).fit(data.y)
            else:
                self._model = _make_estimator(
                    est_cls, self._result.best_config, seed, retrain_limit
                )
                self._model.fit(data.X, data.y)
        else:
            self._model = self._result.best_model
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self):
        if self._model is None:
            raise RuntimeError(
                "this AutoML instance is not fitted: no final model exists "
                "yet. Call fit(X_train, y_train, task=..., time_budget=...) "
                "before predict/predict_proba/score/save_model/"
                "export_artifact"
                + (
                    ""
                    if self._result is None
                    else "; the previous fit() ended without a successful "
                         "trial - increase time_budget or max_iters"
                )
            )

    def _apply_preprocessor(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        for step in getattr(self, "_preprocessor", []):
            X = step.transform(X)
        return X

    def predict(self, X: np.ndarray | None = None,
                horizon: int | None = None) -> np.ndarray:
        """Predict labels/values with the best model found.

        For ``task="forecast"``, returns the next ``horizon`` values
        (default: the horizon given to ``fit``); ``X``, if given, is the
        recent raw history to forecast from (default: the training
        series' tail).
        """
        self._require_fitted()
        if self._task == "forecast":
            history = (
                None if X is None
                else np.asarray(X, dtype=np.float64).ravel()
            )
            return self._model.forecast(
                horizon if horizon is not None else self._horizon,
                history=history,
            )
        if X is None:
            raise TypeError(
                "predict() requires X (it is optional only for "
                "task='forecast')"
            )
        if horizon is not None:
            raise ValueError(
                "horizon only applies to task='forecast', but this AutoML "
                f"was fitted with task={self._task!r}"
            )
        return self._model.predict(self._apply_preprocessor(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities of the best model (classification only)."""
        self._require_fitted()
        if self._task in ("regression", "forecast"):
            raise RuntimeError(
                "predict_proba is only defined for classification, but this "
                f"AutoML was fitted with task={self._task!r} (best learner: "
                f"{self._result.best_learner}); use predict() for point "
                "estimates"
            )
        return self._model.predict_proba(self._apply_preprocessor(X))

    def score(self, X: np.ndarray, y: np.ndarray,
              metric: str | Metric | None = None) -> float:
        """Error of the fitted model on (X, y) under ``metric`` (default:
        the metric used during fit).  Lower is better.

        For ``task="forecast"``, ``X`` is the raw history preceding the
        actuals ``y`` (pass the training series, or ``None`` for its
        stored tail) and the error scores a ``len(y)``-step forecast.
        """
        self._require_fitted()
        m = self._metric if metric is None else get_metric(metric, task=self._task)
        y = np.asarray(y)
        if self._task == "forecast":
            pred = self.predict(X, horizon=int(y.size))
            history = (None if X is None
                       else np.asarray(X, dtype=np.float64).ravel())
            return m.error(y, pred, history=history)
        if self._task != "regression" and m.needs_proba:
            pred = self.predict_proba(X)
        else:
            pred = self.predict(X)
        return m.error(y, pred)

    # -- introspection ---------------------------------------------------
    @property
    def best_estimator(self) -> str:
        """Name of the winning learner."""
        self._require_fitted()
        return self._result.best_learner

    @property
    def best_config(self) -> dict:
        """Hyperparameters of the winning configuration."""
        self._require_fitted()
        return dict(self._result.best_config)

    @property
    def best_loss(self) -> float:
        """Best validation error ε̃ observed during search."""
        self._require_fitted()
        return self._result.best_error

    @property
    def model(self):
        """The final fitted estimator object."""
        self._require_fitted()
        return self._model

    @property
    def best_config_per_estimator(self) -> dict:
        """Best (lowest validation error) config found for each learner."""
        self._require_fitted()
        best: dict[str, tuple[float, dict]] = {}
        for t in self._result.trials:
            cur = best.get(t.learner)
            if cur is None or t.error < cur[0]:
                best[t.learner] = (t.error, dict(t.config))
        return {k: cfg for k, (_, cfg) in best.items()}

    @property
    def search_result(self) -> SearchResult:
        """Full trial log and summary (used by the benchmark harness)."""
        if self._result is None:
            raise RuntimeError("AutoML instance is not fitted; call fit() first")
        return self._result

    # -- model persistence ------------------------------------------------
    def export_artifact(self, metadata: dict | None = None):
        """Bundle the fitted pipeline into a deployable artifact.

        Returns a :class:`repro.serve.PipelineArtifact` — preprocessor
        chain + final model (single estimator or stacked ensemble) +
        task/metric/feature metadata and the training-data fingerprint —
        which predicts on **raw** rows, saves to JSON, and registers
        into a :class:`repro.serve.ModelRegistry`.
        """
        from ..serve.artifact import export_artifact as _export

        return _export(self, metadata=metadata)

    def save_model(self, path: str) -> None:
        """Write the fitted pipeline as a pickle-free JSON artifact.

        The file embeds the preprocessor chain alongside the model
        (:meth:`export_artifact`), so a reloaded pipeline scores raw,
        un-preprocessed rows exactly like this instance.  Supported for
        every built-in learner family and for stacked ensembles
        (:mod:`repro.learners.model_io`); custom learner classes raise —
        pickle those, or store the config and retrain.
        """
        self._require_fitted()
        self.export_artifact().save(path)

    @staticmethod
    def load_model(path: str):
        """Load a pipeline written by :meth:`save_model` (no pickle).

        Returns a :class:`repro.serve.PipelineArtifact` whose
        ``predict``/``predict_proba`` take raw rows.  Legacy files
        written by older versions (a bare :mod:`~repro.learners.model_io`
        estimator dump, no preprocessing) still load: they come back
        wrapped in an artifact with an empty preprocessor chain.
        """
        import json as _json

        from ..learners.model_io import load_model as _load_estimator
        from ..serve.artifact import ARTIFACT_FORMAT, PipelineArtifact

        with open(path) as f:
            obj = _json.load(f)
        if obj.get("format") == ARTIFACT_FORMAT:
            return PipelineArtifact.from_dict(obj)
        # legacy bare-estimator dump: infer the task from the label payload
        model = _load_estimator(obj)
        classes = getattr(model, "classes_", None)
        task = ("regression" if classes is None
                else ("binary" if len(classes) == 2 else "multiclass"))
        return PipelineArtifact(model, [], task, {"legacy_model_file": True})
