"""The AutoML layer: FLAML's cost-aware search (the paper's contribution)."""

from .automl import AutoML, infer_task
from .controller import SearchController, SearchResult, TrialRecord
from .eci import (
    DEFAULT_COST_CONSTANTS,
    CostModel,
    LearnerCostState,
    LearnerProposer,
    eci,
)
from .ensemble import StackedEnsemble, build_ensemble, select_ensemble_members
from .evaluate import TrialOutcome, evaluate_config
from .flow2 import FLOW2
from .metalearning import (
    MetaPortfolio,
    PortfolioEntry,
    build_portfolio,
    meta_features,
)
from .parallel import ParallelSearchController
from .registry import (
    DEFAULT_LEARNERS,
    EXTRA_LEARNERS,
    LearnerSpec,
    all_learners,
    default_estimator_list,
    forecast_spec,
)
from .resampling import TemporalSplitter, choose_resampling, resolve_resampling
from .searchstate import SearchThread
from .serialize import load_result, result_from_dict, result_to_dict, save_result
from .space import (
    Choice,
    Domain,
    LogRandInt,
    LogUniform,
    RandInt,
    SearchSpace,
    Uniform,
)

__all__ = [
    "AutoML",
    "Choice",
    "CostModel",
    "DEFAULT_COST_CONSTANTS",
    "DEFAULT_LEARNERS",
    "Domain",
    "EXTRA_LEARNERS",
    "FLOW2",
    "LearnerCostState",
    "LearnerProposer",
    "LearnerSpec",
    "LogRandInt",
    "LogUniform",
    "MetaPortfolio",
    "ParallelSearchController",
    "PortfolioEntry",
    "RandInt",
    "SearchController",
    "SearchResult",
    "SearchSpace",
    "SearchThread",
    "StackedEnsemble",
    "TemporalSplitter",
    "TrialOutcome",
    "TrialRecord",
    "Uniform",
    "all_learners",
    "build_ensemble",
    "build_portfolio",
    "choose_resampling",
    "default_estimator_list",
    "eci",
    "evaluate_config",
    "forecast_spec",
    "infer_task",
    "load_result",
    "meta_features",
    "resolve_resampling",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "select_ensemble_members",
]
