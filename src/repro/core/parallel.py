"""Parallel search threads (paper appendix) on a pluggable executor.

The appendix: "After choosing one learner based on ECI to perform one
search iteration, if there are extra available resources, we can sample
another learner by ECI, and so on.  When one search iteration for a
learner finishes, the resource is released and we select a learner again
using updated ECIs. ... the multiple search threads are largely
independent and do not interfere with each other."

Two scheduling policies share the same proposer logic and the same
:mod:`repro.exec` engine:

* ``backend="virtual"`` (default) — the simulated scheduler: trials
  execute sequentially through a serial executor, but ``n_workers``
  virtual workers carry virtual start/finish times and ECI feedback only
  becomes visible at a trial's virtual finish, exactly as on real
  hardware.  The trial log carries virtual ``automl_time`` values, so
  anytime curves reflect the parallel wall clock.
* ``backend="serial" | "thread" | "process"`` — real execution: up to
  ``n_workers`` trials are genuinely in flight on the chosen substrate
  ("process" delivers true multi-core parallelism with crash isolation).
  Completions are *committed in launch order* (a deterministic pipeline):
  execution overlaps freely, but feedback, trial numbering, and therefore
  the proposal sequence do not depend on racy completion order — fixed
  seeds give reproducible trial logs on any backend.

Both policies inherit the engine's trial cache (repeated proposals are
free; see ``SearchResult.cache_hits``) and per-trial time limits (an
overdue or crashed trial records an inf-error entry instead of killing
the search).
"""

from __future__ import annotations

import heapq
import time
from collections import deque

import numpy as np

from ..data.dataset import Dataset
from ..exec import (
    ExecutionEngine,
    RetryPolicy,
    SerialExecutor,
    TrialCache,
    TrialExecutor,
    TrialSpec,
    make_executor,
)
from ..metrics.registry import Metric
from .controller import LearnerSelectionMixin, SearchResult, TrialRecord
from .eci import LearnerProposer
from .registry import LearnerSpec
from .resampling import resolve_resampling
from .searchstate import SearchThread

__all__ = ["ParallelSearchController"]

#: executor-backed backends; "virtual" simulates the wall clock instead
REAL_BACKENDS = ("serial", "thread", "process")


def _all_plane_aware(learners: dict[str, LearnerSpec], task: str) -> bool:
    """Whether every searched learner consumes binned-plane views (the
    precondition for shipping codes instead of floats to workers)."""
    try:
        return bool(learners) and all(
            getattr(spec.estimator_cls(task), "_uses_binned_plane", False)
            for spec in learners.values()
        )
    except ValueError:  # a learner not supporting the task: be safe
        return False


class ParallelSearchController(LearnerSelectionMixin):
    """ECI-scheduled search over ``n_workers`` workers (virtual or real)."""

    def __init__(
        self,
        data: Dataset,
        learners: dict[str, LearnerSpec],
        metric: Metric,
        time_budget: float = 60.0,
        n_workers: int = 2,
        seed: int = 0,
        init_sample_size: int = 10_000,
        sample_growth: float = 2.0,
        n_splits: int = 5,
        holdout_ratio: float = 0.1,
        learner_selection: str = "eci",
        use_sampling: bool = True,
        resampling_override: str | None = None,
        random_init: bool = False,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_trials: int = 10_000,
        stop_at_error: float | None = None,
        starting_points: dict[str, dict] | None = None,
        fitted_cost_model: bool = False,
        backend: str = "virtual",
        executor: TrialExecutor | None = None,
        trial_cache: TrialCache | bool = True,
        trial_time_limit: float | None = None,
        horizon: int = 1,
        seasonal_period: int | None = None,
        retry_policy: RetryPolicy | None = None,
        stop_event=None,
        tenant: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        # an injected executor names its own substrate (e.g. "shared" for
        # a multi-tenant pool lease); only factory-built backends must be
        # one of the known names
        if executor is None and backend not in ("virtual",) + REAL_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: virtual, "
                + ", ".join(REAL_BACKENDS)
            )
        self.check_selection(learner_selection)
        if not learners:
            raise ValueError("need at least one learner")
        self.data = data
        self.learners = dict(learners)
        self.metric = metric
        self.time_budget = float(time_budget)
        self.n_workers = int(n_workers)
        self.seed = seed
        self.n_splits = n_splits
        self.holdout_ratio = holdout_ratio
        self.learner_selection = learner_selection
        self.max_trials = max_trials
        self.stop_at_error = stop_at_error
        self.backend = backend
        self.stop_event = stop_event  # cooperative cancel (fit service)
        self.horizon = max(1, int(horizon))
        self.seasonal_period = seasonal_period
        self.rng = np.random.default_rng(seed)
        self.resampling, self._thread_full_size = resolve_resampling(
            data.n, data.d, data.task, time_budget,
            override=resampling_override,
            instance_threshold=cv_instance_threshold,
            rate_threshold=cv_rate_threshold,
            horizon=self.horizon,
        )
        self.proposer = LearnerProposer(
            list(learners), self.rng, c=sample_growth,
            cost_constants={n: s.cost_constant for n, s in learners.items()},
            fitted_cost_model=fitted_cost_model,
        )
        # idle-thread pool per learner; a learner with all threads busy gets
        # a NEW thread from a different random starting point (appendix:
        # "one learner can also have multiple search threads by using
        # different starting points").  The first thread of the i-th
        # learner is seeded exactly like SearchController's (seed + i), so
        # an n_workers=1 run reproduces the sequential controller's log.
        self._init_sample_size = init_sample_size
        self._sample_growth = sample_growth
        self._use_sampling = bool(use_sampling)
        self._random_init = bool(random_init)
        self._idle: dict[str, list[SearchThread]] = {}
        self._extra_threads = 0
        for i, (name, spec) in enumerate(learners.items()):
            self._idle[name] = [
                self._make_thread(
                    name, spec, seed=seed + i,
                    starting_point=(starting_points or {}).get(name),
                )
            ]
        self._labels = np.unique(data.y) if data.is_classification else None
        self._rr_index = 0  # roundrobin pointer
        own_executor = executor is None
        if executor is None:
            real = backend if backend in REAL_BACKENDS else "serial"
            # process workers pre-warm their binned-data plane with the
            # exact split/codes context the first trials will request
            warmup = (
                None
                if self.resampling == "temporal"
                else {
                    "resampling": self.resampling,
                    "holdout_ratio": float(self.holdout_ratio),
                    "seed": int(self.seed),
                    "n_splits": int(self.n_splits),
                    "sample_size": int(
                        min(self._init_sample_size, self._thread_full_size)
                        if self._use_sampling
                        else self._thread_full_size
                    ),
                    # when every searched learner consumes BinnedMatrix
                    # views, process workers for large data can receive
                    # pre-binned codes instead of the float matrix
                    "plane_learners_only": _all_plane_aware(
                        learners, data.task
                    ),
                }
            )
            executor = make_executor(
                real, data,
                n_workers=self.n_workers if real != "serial" else 1,
                warmup=warmup,
            )
        if isinstance(trial_cache, TrialCache):
            cache = trial_cache
        else:
            cache = TrialCache() if trial_cache else None
        self.engine = ExecutionEngine(
            executor, cache=cache, trial_time_limit=trial_time_limit,
            own_executor=own_executor, retry_policy=retry_policy,
            tenant=tenant,
        )

    def _cancelled(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    # ------------------------------------------------------------------
    def _make_thread(self, name: str, spec: LearnerSpec, seed: int,
                     starting_point: dict | None = None) -> SearchThread:
        return SearchThread(
            name, spec.space_fn(self._thread_full_size, self.data.task),
            full_size=self._thread_full_size,
            init_sample_size=self._init_sample_size,
            sample_growth=self._sample_growth,
            seed=seed,
            use_sampling=self._use_sampling,
            random_init=self._random_init,
            starting_point=starting_point,
        )

    def _extra_thread(self, name: str) -> SearchThread:
        self._extra_threads += 1
        return self._make_thread(
            name, self.learners[name], seed=self.seed + 1000 * self._extra_threads
        )

    def _propose(self, train_time_limit: float):
        """Pick (learner, thread, config, s, kind) and build the spec."""
        learner = self._next_learner()
        pool = self._idle[learner]
        thread = pool.pop() if pool else self._extra_thread(learner)
        config, s, kind = thread.propose(self.proposer.states[learner])
        limit = train_time_limit
        if self.engine.trial_time_limit is not None:
            limit = min(limit, self.engine.trial_time_limit)
        spec = TrialSpec(
            learner=learner,
            estimator_cls=self.learners[learner].estimator_cls(self.data.task),
            config=config,
            sample_size=s,
            resampling=self.resampling,
            metric=self.metric,
            n_splits=self.n_splits,
            holdout_ratio=self.holdout_ratio,
            seed=self.seed,
            train_time_limit=max(limit, 0.01),
            labels=self._labels,
            horizon=self.horizon,
            seasonal_period=self.seasonal_period,
        )
        return learner, thread, config, s, kind, spec

    def _commit(self, trials: list[TrialRecord], state: dict,
                learner: str, thread: SearchThread, config: dict, s: int,
                kind: str, outcome, automl_time: float) -> None:
        """Feed one finished trial back and append its log record."""
        thread.tell(outcome.error)
        self._idle[learner].append(thread)
        self.proposer.record(learner, outcome.error, outcome.cost,
                             sample_size=s)
        improved = outcome.error < state["best_error"]
        if improved:
            state["best_error"] = outcome.error
            state["best"] = (learner, config, s)
        trials.append(
            TrialRecord(
                iteration=len(trials) + 1,
                automl_time=automl_time,
                learner=learner,
                config=dict(config),
                sample_size=s,
                resampling=self.resampling,
                error=outcome.error,
                cost=outcome.cost,
                kind=kind,
                improved_global=improved,
                eci_snapshot=self.proposer.eci_values(),
                failure=getattr(outcome, "failure", None),
                attempts=getattr(outcome, "attempts", 1),
            )
        )

    def _stopped(self, state: dict) -> bool:
        return (
            self.stop_at_error is not None
            and state["best_error"] <= self.stop_at_error
        )

    def _result(self, trials: list[TrialRecord], state: dict,
                wall_time: float) -> SearchResult:
        trials.sort(key=lambda t: t.automl_time)
        for i, t in enumerate(trials):
            t.iteration = i + 1
        best = state["best"]
        return SearchResult(
            best_learner=best[0],
            best_config=best[1],
            best_sample_size=best[2],
            best_error=float(state["best_error"]),
            resampling=self.resampling,
            trials=trials,
            wall_time=wall_time,
            cache_hits=self.engine.cache_hits,
            backend=self.backend,
            n_workers=self.n_workers,
        )

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Execute the search under the configured backend."""
        try:
            if self.backend == "virtual":
                return self._run_virtual()
            return self._run_real()
        finally:
            self.engine.shutdown()

    # -- virtual-time simulation ---------------------------------------
    def _run_virtual(self) -> SearchResult:
        """Event-driven simulation: a heap of (finish_time, worker) events."""
        trials: list[TrialRecord] = []
        state = {"best_error": np.inf, "best": (None, None, 0)}
        # (finish_time, seq, payload) events; one outstanding trial per worker
        events: list = []
        seq = 0
        launched = 0

        def _launch(now: float):
            nonlocal seq, launched
            learner, thread, config, s, kind, spec = self._propose(
                self.time_budget
            )
            outcome = self.engine.run(spec)
            payload = (learner, thread, config, s, kind, outcome)
            heapq.heappush(events, (now + outcome.cost, seq, payload))
            seq += 1
            launched += 1

        for _ in range(self.n_workers):
            if launched >= self.max_trials:
                break
            _launch(0.0)
        while events:
            finish, _, payload = heapq.heappop(events)
            learner, thread, config, s, kind, outcome = payload
            # feedback becomes visible at the trial's virtual finish; the
            # thread returns to the learner's idle pool afterwards
            self._commit(trials, state, learner, thread, config, s, kind,
                         outcome, automl_time=finish)
            if (
                finish < self.time_budget
                and launched < self.max_trials
                and not self._stopped(state)
                and not self._cancelled()
            ):
                _launch(finish)
        wall = max((t.automl_time for t in trials), default=0.0)
        return self._result(trials, state, wall)

    # -- real execution -------------------------------------------------
    def _run_real(self) -> SearchResult:
        """Pipelined execution: keep up to ``n_workers`` trials in flight,
        commit completions in launch order (deterministic given a seed).

        A trial that exceeds the hard time limit is abandoned (recorded
        as inf-error) but its worker is still busy until the underlying
        call returns; such "zombies" keep occupying a worker slot so new
        trials are only submitted when a worker can actually start them —
        otherwise a single hung trial would queue successors behind it
        and time them out in cascade before they ever ran.
        """
        start = time.perf_counter()
        trials: list[TrialRecord] = []
        state = {"best_error": np.inf, "best": (None, None, 0)}
        in_flight: deque = deque()  # (EngineHandle, learner, thread, ...)
        zombies: list = []  # timed-out handles whose workers still run
        launched = 0
        limit = self.engine.trial_time_limit
        while True:
            zombies[:] = [z for z in zombies if not z.worker_done()]
            elapsed = time.perf_counter() - start
            while (
                len(in_flight) + len(zombies) < self.n_workers
                and elapsed < self.time_budget
                and launched < self.max_trials
                and not self._stopped(state)
                and not self._cancelled()
            ):
                remaining = self.time_budget - elapsed
                launch = self._propose(remaining)
                handle = self.engine.submit(launch[-1])
                in_flight.append((handle,) + launch[:-1])
                launched += 1
                elapsed = time.perf_counter() - start
            if not in_flight:
                if (
                    zombies
                    and elapsed < self.time_budget
                    and launched < self.max_trials
                    and not self._stopped(state)
                    and not self._cancelled()
                ):
                    # every worker is stuck on an abandoned trial: wait
                    # for one to free up instead of ending the search
                    time.sleep(min(0.02, max(self.time_budget - elapsed, 0)))
                    continue
                break
            handle, learner, thread, config, s, kind = in_flight.popleft()
            timeout = None
            if limit is not None:
                timeout = max(limit - (time.perf_counter() - handle.submit_time),
                              0.0)
            outcome = handle.outcome(timeout=timeout)
            # any attempt this handle abandoned (timed out but the
            # backend could not cancel it) still burns a worker slot —
            # including abandoned attempts of a trial whose retry later
            # succeeded, so track worker_done(), not just timed_out
            if not handle.worker_done():
                zombies.append(handle)
            self._commit(trials, state, learner, thread, config, s, kind,
                         outcome, automl_time=time.perf_counter() - start)
        return self._result(trials, state, time.perf_counter() - start)
