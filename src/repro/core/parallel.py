"""Parallel search threads (paper appendix) — simulated scheduler.

The appendix: "After choosing one learner based on ECI to perform one
search iteration, if there are extra available resources, we can sample
another learner by ECI, and so on.  When one search iteration for a
learner finishes, the resource is released and we select a learner again
using updated ECIs. ... the multiple search threads are largely
independent and do not interfere with each other."

This environment has one core, so true parallelism is *simulated*: trials
execute sequentially, but the scheduler maintains ``n_workers`` virtual
workers and assigns each trial a virtual start/finish time; ECI updates
become visible only at a trial's virtual finish, exactly as they would on
real hardware.  The returned trial log carries virtual ``automl_time``
values, so anytime curves reflect the parallel wall clock.  (DESIGN.md §2
documents this substitution: multi-core hardware -> virtual-time
scheduler exercising the same proposer logic.)
"""

from __future__ import annotations

import heapq

import numpy as np

from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .controller import SearchResult, TrialRecord
from .eci import LearnerProposer
from .evaluate import evaluate_config
from .registry import LearnerSpec
from .resampling import choose_resampling
from .searchstate import SearchThread

__all__ = ["ParallelSearchController"]


class ParallelSearchController:
    """ECI-scheduled search over ``n_workers`` virtual workers."""

    def __init__(
        self,
        data: Dataset,
        learners: dict[str, LearnerSpec],
        metric: Metric,
        time_budget: float = 60.0,
        n_workers: int = 2,
        seed: int = 0,
        init_sample_size: int = 10_000,
        sample_growth: float = 2.0,
        n_splits: int = 5,
        holdout_ratio: float = 0.1,
        resampling_override: str | None = None,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_trials: int = 10_000,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.data = data
        self.learners = dict(learners)
        self.metric = metric
        self.time_budget = float(time_budget)
        self.n_workers = int(n_workers)
        self.seed = seed
        self.n_splits = n_splits
        self.holdout_ratio = holdout_ratio
        self.max_trials = max_trials
        self.rng = np.random.default_rng(seed)
        self.resampling = resampling_override or choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=cv_instance_threshold,
            rate_threshold=cv_rate_threshold,
        )
        self.proposer = LearnerProposer(
            list(learners), self.rng, c=sample_growth,
            cost_constants={n: s.cost_constant for n, s in learners.items()},
        )
        # idle-thread pool per learner; a learner with all threads busy gets
        # a NEW thread from a different random starting point (appendix:
        # "one learner can also have multiple search threads by using
        # different starting points")
        self._init_sample_size = init_sample_size
        self._sample_growth = sample_growth
        self._idle: dict[str, list[SearchThread]] = {}
        self._thread_count = 0
        for name, spec in learners.items():
            self._idle[name] = [self._new_thread(name, spec)]
        self._labels = np.unique(data.y) if data.is_classification else None

    def _new_thread(self, name: str, spec: LearnerSpec) -> SearchThread:
        self._thread_count += 1
        return SearchThread(
            name, spec.space_fn(self.data.n, self.data.task),
            full_size=self.data.n,
            init_sample_size=self._init_sample_size,
            sample_growth=self._sample_growth,
            seed=self.seed + 1000 * self._thread_count,
        )

    # ------------------------------------------------------------------
    def _launch(self, now: float):
        """Pick a learner by current ECI and execute its next trial; the
        trial's virtual finish time is now + measured cost."""
        learner = self.proposer.propose()
        pool = self._idle[learner]
        thread = pool.pop() if pool else self._new_thread(
            learner, self.learners[learner]
        )
        config, s, kind = thread.propose(self.proposer.states[learner])
        outcome = evaluate_config(
            self.data,
            self.learners[learner].estimator_cls(self.data.task),
            config, sample_size=s, resampling=self.resampling,
            metric=self.metric, n_splits=self.n_splits,
            holdout_ratio=self.holdout_ratio, seed=self.seed,
            train_time_limit=self.time_budget, labels=self._labels,
        )
        return learner, thread, config, s, kind, outcome, now + outcome.cost

    def run(self) -> SearchResult:
        """Event-driven simulation: a heap of (finish_time, worker) events."""
        trials: list[TrialRecord] = []
        best_error = np.inf
        best = (None, None, 0)
        # (finish_time, seq, payload) events; one outstanding trial per worker
        events: list = []
        seq = 0
        launched = 0
        for _ in range(self.n_workers):
            if launched >= self.max_trials:
                break
            payload = self._launch(0.0)
            heapq.heappush(events, (payload[-1], seq, payload))
            seq += 1
            launched += 1
        while events:
            finish, _, payload = heapq.heappop(events)
            learner, thread, config, s, kind, outcome, _ = payload
            # feedback becomes visible at the trial's virtual finish; the
            # thread returns to the learner's idle pool afterwards
            thread.tell(outcome.error)
            self._idle[learner].append(thread)
            self.proposer.record(learner, outcome.error, outcome.cost)
            improved = outcome.error < best_error
            if improved:
                best_error = outcome.error
                best = (learner, config, s)
            trials.append(
                TrialRecord(
                    iteration=len(trials) + 1,
                    automl_time=finish,
                    learner=learner,
                    config=dict(config),
                    sample_size=s,
                    resampling=self.resampling,
                    error=outcome.error,
                    cost=outcome.cost,
                    kind=kind,
                    improved_global=improved,
                    eci_snapshot=self.proposer.eci_values(),
                )
            )
            if finish < self.time_budget and launched < self.max_trials:
                payload = self._launch(finish)
                heapq.heappush(events, (payload[-1], seq, payload))
                seq += 1
                launched += 1
        trials.sort(key=lambda t: t.automl_time)
        for i, t in enumerate(trials):
            t.iteration = i + 1
        return SearchResult(
            best_learner=best[0],
            best_config=best[1],
            best_sample_size=best[2],
            best_error=float(best_error),
            resampling=self.resampling,
            trials=trials,
            wall_time=max((t.automl_time for t in trials), default=0.0),
        )
