"""Serialisation of search results / trial logs to plain JSON dicts.

Downstream users (and the benchmark harness) persist trial logs for later
analysis; these helpers keep that format explicit and round-trippable.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from .controller import SearchResult, TrialRecord

__all__ = [
    "trial_to_dict",
    "trial_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]


def _jsonable(v: Any) -> Any:
    if isinstance(v, (np.integer,)):
        return int(v)
    if isinstance(v, (np.floating,)):
        return float(v)
    if isinstance(v, np.ndarray):
        return v.tolist()
    if isinstance(v, float) and not np.isfinite(v):
        return "inf" if v > 0 else "-inf"
    return v


def _unjsonable(v: Any) -> Any:
    if v == "inf":
        return float("inf")
    if v == "-inf":
        return float("-inf")
    return v


def trial_to_dict(t: TrialRecord) -> dict:
    """TrialRecord -> JSON-safe dict."""
    out = {
        "iteration": t.iteration,
        "automl_time": t.automl_time,
        "learner": t.learner,
        "config": {k: _jsonable(v) for k, v in t.config.items()},
        "sample_size": int(t.sample_size),
        "resampling": t.resampling,
        "error": _jsonable(t.error),
        "cost": t.cost,
        "kind": t.kind,
        "improved_global": bool(t.improved_global),
        "eci_snapshot": {k: _jsonable(v) for k, v in t.eci_snapshot.items()},
    }
    if t.failure is not None:  # keep successful rows compact
        out["failure"] = t.failure
    if t.attempts != 1:  # only retried trials carry the count
        out["attempts"] = int(t.attempts)
    return out


def trial_from_dict(d: dict) -> TrialRecord:
    """JSON dict -> TrialRecord."""
    return TrialRecord(
        iteration=int(d["iteration"]),
        automl_time=float(d["automl_time"]),
        learner=d["learner"],
        config=dict(d["config"]),
        sample_size=int(d["sample_size"]),
        resampling=d["resampling"],
        error=float(_unjsonable(d["error"])),
        cost=float(d["cost"]),
        kind=d["kind"],
        improved_global=bool(d["improved_global"]),
        eci_snapshot={k: float(_unjsonable(v))
                      for k, v in d.get("eci_snapshot", {}).items()},
        failure=d.get("failure"),
        attempts=int(d.get("attempts", 1)),
    )


def result_to_dict(r: SearchResult) -> dict:
    """SearchResult -> JSON-safe dict (the fitted model is not serialised)."""
    return {
        "best_learner": r.best_learner,
        "best_config": (
            {k: _jsonable(v) for k, v in r.best_config.items()}
            if r.best_config is not None
            else None
        ),
        "best_sample_size": int(r.best_sample_size),
        "best_error": _jsonable(r.best_error),
        "resampling": r.resampling,
        "wall_time": r.wall_time,
        "cache_hits": int(r.cache_hits),
        "backend": r.backend,
        "n_workers": int(r.n_workers),
        "trials": [trial_to_dict(t) for t in r.trials],
    }


def result_from_dict(d: dict) -> SearchResult:
    """JSON dict -> SearchResult."""
    return SearchResult(
        best_learner=d["best_learner"],
        best_config=dict(d["best_config"]) if d["best_config"] is not None else None,
        best_sample_size=int(d["best_sample_size"]),
        best_error=float(_unjsonable(d["best_error"])),
        resampling=d["resampling"],
        trials=[trial_from_dict(t) for t in d["trials"]],
        wall_time=float(d["wall_time"]),
        # logs written before the execution engine lack these fields
        cache_hits=int(d.get("cache_hits", 0)),
        backend=d.get("backend", "serial"),
        n_workers=int(d.get("n_workers", 1)),
    )


def save_result(r: SearchResult, path: str) -> None:
    """Write a search result to a JSON file."""
    with open(path, "w") as f:
        json.dump(result_to_dict(r), f)


def load_result(path: str) -> SearchResult:
    """Read a search result from a JSON file."""
    with open(path) as f:
        return result_from_dict(json.load(f))
