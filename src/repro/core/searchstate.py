"""Per-learner search thread: FLOW2 + the sample-size schedule (step 2).

Implements the paper's hyperparameter-and-sample-size proposer:

* each learner starts at a small sample size (10K in the paper, scaled
  here via ``init_sample_size``);
* when the learner is picked, compare ``ECI1(l)`` (cost to improve at the
  current size) with ``ECI2(l)`` (cost to retry the incumbent at ``c``
  times the size): if ``ECI1 >= ECI2`` keep the incumbent hyperparameters
  and grow the sample; otherwise run one FLOW2 step at the current size;
* once the full data size is reached it is kept until FLOW2 converges for
  that learner (reduces the risk of pruning good configs by small samples
  compared to multi-fidelity pruning);
* on convergence the search restarts from a random point **and the sample
  size resets to the initial value**;
* step-size adaptation/restart only happens at the full sample size.
"""

from __future__ import annotations

from .eci import LearnerCostState
from .flow2 import FLOW2
from .space import SearchSpace

__all__ = ["SearchThread"]


class SearchThread:
    """FLOW2 search + sample-size scheduling for a single learner."""

    def __init__(
        self,
        name: str,
        space: SearchSpace,
        full_size: int,
        init_sample_size: int = 10_000,
        sample_growth: float = 2.0,
        seed: int = 0,
        use_sampling: bool = True,
        random_init: bool = False,
        starting_point: dict | None = None,
    ) -> None:
        self.name = name
        self.space = space
        self.full_size = int(full_size)
        self.c = float(sample_growth)
        self.use_sampling = bool(use_sampling)
        self._init_sample_size = (
            min(int(init_sample_size), self.full_size) if use_sampling else self.full_size
        )
        self.sample_size = self._init_sample_size
        init_config = None
        if random_init:
            # design-choice ablation: start FLOW2 from a random point
            # instead of the Table 5 low-cost initialisation
            import numpy as _np

            init_config = space.sample(_np.random.default_rng(seed))
        elif starting_point:
            # warm start: user-provided values override the low-cost init
            init_config = {**space.init_config(), **starting_point}
        self.flow2 = FLOW2(space, seed=seed, init_config=init_config)
        self._pending_kind: str | None = None

    # ------------------------------------------------------------------
    @property
    def at_full_size(self) -> bool:
        """Whether the thread has reached the full training-data size."""
        return self.sample_size >= self.full_size

    def propose(self, cost_state: LearnerCostState) -> tuple[dict, int, str]:
        """Return (config, sample_size, kind) for the next trial of this
        learner.  kind is 'search' (new FLOW2 point) or 'sample_up'
        (incumbent config, larger sample)."""
        if (
            self.use_sampling
            and not self.at_full_size
            and cost_state.tried
            and cost_state.eci1() >= cost_state.eci2(self.c)
        ):
            self.sample_size = min(
                int(self.sample_size * self.c), self.full_size
            )
            self._pending_kind = "sample_up"
            return dict(self.flow2.best_config), self.sample_size, "sample_up"
        self._pending_kind = "search"
        return dict(self.flow2.propose()), self.sample_size, "search"

    def tell(self, error: float) -> None:
        """Feed the last trial's validation error back into the thread."""
        if self._pending_kind is None:
            raise RuntimeError("tell() called before propose()")
        kind, self._pending_kind = self._pending_kind, None
        if kind == "sample_up":
            # incumbent re-evaluated at the new size: re-anchor FLOW2's
            # baseline so future comparisons are at the same fidelity
            self.flow2.reset_baseline(error)
            return
        self.flow2.tell(error, adapt=self.at_full_size)
        if self.at_full_size and self.flow2.converged:
            # random restart to escape local optima; sample size resets too
            self.flow2.restart()
            self.sample_size = self._init_sample_size
