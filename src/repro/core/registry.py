"""Learner registry for the AutoML layer.

Maps FLAML's learner names (Table 5 / the appendix ECI constants) to the
estimator classes of the ML layer, the search-space builders, and the
relative-cost constants.  Custom learners are registered with
:meth:`AutoML.add_learner`; they must expose a classmethod
``search_space(data_size, task) -> SearchSpace`` and may expose
``cost_relative2lgbm`` (defaults to 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..learners import (
    CatBoostLikeClassifier,
    CatBoostLikeRegressor,
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    GaussianNB,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LassoRegressor,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RandomForestClassifier,
    RandomForestRegressor,
    RidgeRegressor,
    XGBLikeClassifier,
    XGBLikeRegressor,
    XGBLimitDepthClassifier,
    XGBLimitDepthRegressor,
)
from .space import (
    SearchSpace,
    catboost_space,
    extra_tree_space,
    gaussian_nb_space,
    knn_space,
    lgbm_space,
    lrl1_space,
    lrl2_space,
    rf_space,
    xgb_limitdepth_space,
    xgboost_space,
)

__all__ = [
    "LearnerSpec",
    "DEFAULT_LEARNERS",
    "EXTRA_LEARNERS",
    "all_learners",
    "default_estimator_list",
    "forecast_spec",
    "make_spec_from_class",
]


@dataclass(frozen=True)
class LearnerSpec:
    """Everything the controller needs to search one learner."""

    name: str
    classifier_cls: type | None
    regressor_cls: type | None
    space_fn: Callable[[int, str], SearchSpace]
    cost_constant: float = 1.0

    def estimator_cls(self, task: str) -> type:
        """The estimator class for the given task (forecasting reduces to
        regression, so it uses the regressor)."""
        cls = (self.regressor_cls if task in ("regression", "forecast")
               else self.classifier_cls)
        if cls is None:
            raise ValueError(f"learner {self.name!r} does not support task {task!r}")
        return cls

    def supports(self, task: str) -> bool:
        """Whether this learner supports the given task."""
        return (
            self.regressor_cls is not None
            if task in ("regression", "forecast")
            else self.classifier_cls is not None
        )


DEFAULT_LEARNERS: dict[str, LearnerSpec] = {
    "lgbm": LearnerSpec("lgbm", LGBMLikeClassifier, LGBMLikeRegressor,
                        lgbm_space, 1.0),
    "xgboost": LearnerSpec("xgboost", XGBLikeClassifier, XGBLikeRegressor,
                           xgboost_space, 1.6),
    "extra_tree": LearnerSpec("extra_tree", ExtraTreesClassifier,
                              ExtraTreesRegressor, extra_tree_space, 1.9),
    "rf": LearnerSpec("rf", RandomForestClassifier, RandomForestRegressor,
                      rf_space, 2.0),
    "catboost": LearnerSpec("catboost", CatBoostLikeClassifier,
                            CatBoostLikeRegressor, catboost_space, 15.0),
    "lrl1": LearnerSpec("lrl1", LogisticRegressionL1, LassoRegressor,
                        lrl1_space, 160.0),
}


#: Learners beyond the paper's Table 5, available by explicit
#: ``estimator_list`` mention only — the defaults stay exactly the paper's
#: six so benchmark behaviour is unchanged.  Cost constants are our own
#: offline calibrations in the same style as the appendix's
#: {lgbm 1, ..., lrl1 160}.
EXTRA_LEARNERS: dict[str, LearnerSpec] = {
    "xgb_limitdepth": LearnerSpec("xgb_limitdepth", XGBLimitDepthClassifier,
                                  XGBLimitDepthRegressor,
                                  xgb_limitdepth_space, 1.6),
    "lrl2": LearnerSpec("lrl2", LogisticRegressionL2, RidgeRegressor,
                        lrl2_space, 160.0),
    "kneighbor": LearnerSpec("kneighbor", KNeighborsClassifier,
                             KNeighborsRegressor, knn_space, 30.0),
    "gaussian_nb": LearnerSpec("gaussian_nb", GaussianNB, None,
                               gaussian_nb_space, 1.2),
}


def all_learners() -> dict[str, LearnerSpec]:
    """Default + extra learners (extras never shadow defaults)."""
    return {**EXTRA_LEARNERS, **DEFAULT_LEARNERS}


def default_estimator_list(task: str) -> list[str]:
    """All registered learners that support the task, cheapest first."""
    return [n for n, s in DEFAULT_LEARNERS.items() if s.supports(task)]


def forecast_spec(spec: LearnerSpec) -> LearnerSpec:
    """Wrap a learner spec for ``task="forecast"`` searches.

    The wrapped ``space_fn`` builds the learner's regression space and
    appends the featurization domains (``fc_lags``/``fc_window``/
    ``fc_diff``), making lag structure a first-class searched
    hyperparameter.  ``data_size`` here is the usable training length the
    controller budgets for temporal folds, so lag caps scale with it.
    """
    from .space import add_forecast_domains

    base_fn = spec.space_fn

    def space_fn(data_size: int, task: str):
        return add_forecast_domains(base_fn(data_size, "regression"),
                                    data_size)

    return LearnerSpec(
        name=spec.name,
        classifier_cls=spec.classifier_cls,
        regressor_cls=spec.regressor_cls,
        space_fn=space_fn,
        cost_constant=spec.cost_constant,
    )


def make_spec_from_class(name: str, learner_class: type) -> LearnerSpec:
    """Build a spec for a user-provided learner class (``add_learner``)."""
    space_fn = getattr(learner_class, "search_space", None)
    if space_fn is None:
        raise TypeError(
            f"custom learner {learner_class.__name__} must define a classmethod "
            "search_space(data_size, task) -> SearchSpace"
        )
    cost = float(getattr(learner_class, "cost_relative2lgbm", 1.0))
    return LearnerSpec(
        name=name,
        classifier_cls=learner_class,
        regressor_cls=learner_class,
        space_fn=lambda n, task: learner_class.search_space(n, task),
        cost_constant=cost,
    )
