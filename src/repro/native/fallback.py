"""Pure-numpy reference kernels for the tree-grower hot loops.

This module is the **semantic definition** of the native kernels: the C
extension in ``_kernels.c`` must reproduce every function here bit for
bit (``tests/native/test_kernel_parity.py`` fuzzes that contract), and
any box without a working C compiler runs on this module alone.  The
code is the grower hot-loop numpy moved verbatim out of
``learners/tree.py`` / ``learners/catboost_like.py`` — accumulation
orders, in-place gain assembly and argmax tie-breaking are all part of
the contract, so edit with care and re-run the parity fuzz + golden
suites after any change.

Shared conventions (both implementations):

* ``codes`` are C-contiguous uint8/uint16 bin codes, values strictly
  below the per-feature ``n_bins`` (the :class:`~repro.learners.
  histogram.Binner` invariant — the kernels trust it);
* index/feature arrays are int64, grad/hess are float64;
* histograms are float64 ``(P, F, nbmax)`` with parts (grad, hess
  [, count]).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ObliviousLevelScorer",
    "best_split_scan",
    "build_class_hists",
    "build_hists",
    "ensemble_predict",
    "oblivious_predict",
    "soft_threshold",
]

_EPS = 1e-12

#: kernels modules advertise which implementation they are (logs/tests)
is_native = False


def soft_threshold(g, alpha: float):
    """L1 soft-thresholding, ufunc-chained exactly as the growers use it."""
    return np.sign(g) * np.maximum(np.abs(g) - alpha, 0.0)


def _score(G, H, alpha: float, lam: float):
    return soft_threshold(G, alpha) ** 2 / (H + lam)


def build_hists(codes, g, h, idx, features, n_bins, nbmax, need_cnt,
                all_features=False):
    """(grad, hess[, count]) per-(feature, bin) histograms of one node.

    ``g``/``h`` are already gathered to ``idx`` order; ``all_features``
    says ``features`` is every column in order (enables the plain-row
    gather).  The count histogram is only materialised when
    ``min_samples_leaf`` needs it (``need_cnt``).

    The result is **one** stacked array of shape ``(P, F, nbmax)`` with
    ``P = 3 if need_cnt else 2`` (grad, hess[, count] parts).  Both
    branches below accumulate every (part, feature, bin) bucket in row
    (``idx``) order, so they are bitwise identical to each other and to
    the C kernel's plain row-major loop; what the flat single-bincount
    branch drops is per-call numpy dispatch, which dominates on the
    small nodes deep in a tree.
    """
    F = features.size
    W = F * nbmax
    P = 3 if need_cnt else 2
    if idx.size == 0:
        # growers never histogram empty nodes, but the kernel contract
        # is float64 zeros (np.bincount drops the weights dtype when
        # the input is empty and would return int64 here)
        return np.zeros((P, F, nbmax))
    if idx.size * F <= 200_000:
        # Small node: flat bincount over all candidate features at
        # once (block j of the histogram belongs to features[j]) —
        # per-feature Python loops are interpreter-overhead-bound here.
        sub = codes[idx] if all_features else codes[idx[:, None], features]
        flat = (sub + np.arange(F, dtype=np.int64) * nbmax).ravel()
        gw = np.repeat(g, F) if F > 1 else g
        hw = np.repeat(h, F) if F > 1 else h
        if need_cnt:
            keys = np.concatenate((flat, flat + W, flat + 2 * W))
            wts = np.concatenate((gw, hw, np.ones(flat.size)))
        else:
            keys = np.concatenate((flat, flat + W))
            wts = np.concatenate((gw, hw))
        return np.bincount(keys, weights=wts,
                           minlength=P * W).reshape(P, F, nbmax)
    # Large node: per-feature bincounts avoid materialising the
    # (rows x features) weight copies.
    hist = np.zeros((P, F, nbmax))
    for j, f in enumerate(features):
        c = codes[idx, f]
        hist[0, j, : n_bins[f]] = np.bincount(c, weights=g, minlength=n_bins[f])
        hist[1, j, : n_bins[f]] = np.bincount(c, weights=h, minlength=n_bins[f])
        if need_cnt:
            hist[2, j, : n_bins[f]] = np.bincount(c, minlength=n_bins[f])
    return hist


def build_class_hists(codes, yk, idx, w, features, n_classes, nbmax,
                      all_features=False):
    """Joint ``(class, feature, bin)`` count histograms of one node.

    The classification-tree analogue of :func:`build_hists`: ``yk`` is
    the node's class labels already gathered to ``idx`` order (int64,
    values in ``[0, n_classes)``), ``w`` is the matching per-row weight
    gather or ``None`` for unit weights.  Returns float64
    ``(n_classes, F, nbmax)``.

    This is the ``ClassTreeGrower._best_split`` joint-bincount moved
    verbatim: one flat bincount over ``class*(F*nbmax) + j*nbmax +
    code`` keys, so every bucket accumulates its rows in ``idx`` order
    — the same order the C kernel's plain row-major loop produces.
    """
    F = features.size
    if idx.size == 0:
        # same float64-zeros contract as build_hists on empty nodes
        return np.zeros((n_classes, F, nbmax))
    sub = codes[idx] if all_features else codes[idx[:, None], features]
    flat = (
        yk[:, None] * (F * nbmax)
        + sub
        + np.arange(F, dtype=np.int64) * nbmax
    ).ravel()
    flat_w = None if w is None else (np.repeat(w, F) if F > 1 else w)
    joint = np.bincount(
        flat, weights=flat_w, minlength=n_classes * F * nbmax
    ).astype(np.float64)
    return joint.reshape(n_classes, F, nbmax)


def ensemble_predict(codes, feature, threshold, left, right, value,
                     tree_offset, tree_class, lr, out):
    """Accumulate a packed ensemble's predictions into ``out`` in place.

    The node arrays are the concatenated per-tree buffers built by
    :class:`~repro.learners.tree.FlatEnsemble`: int64
    ``feature``/``threshold``/``left``/``right`` (child ids already
    absolute, leaves marked ``feature < 0``) and float64 ``value`` of
    shape ``(total_nodes, V)``.  ``tree_offset[t]`` is tree ``t``'s
    root node; ``tree_class[t] = k >= 0`` adds ``lr * value[leaf, 0]``
    into column ``k`` of the C-contiguous float64 ``out``; ``-1`` adds
    ``lr * value[leaf]`` across the whole row (forest-probability
    trees).

    Bitwise contract: per output cell, additions arrive in tree order
    and each is a single ``lr * leaf_value`` product followed by one
    add — exactly the ``scores += lr * tree.predict(codes)`` chain the
    engines used to run tree by tree.  Navigation is pure integer
    compare (``code <= threshold`` goes left), so leaf choice is exact.
    """
    n = codes.shape[0]
    for t in range(tree_offset.size - 1):
        node = np.full(n, tree_offset[t], dtype=np.int64)
        while True:
            act = np.nonzero(feature[node] >= 0)[0]
            if act.size == 0:
                break
            cur = node[act]
            goleft = codes[act, feature[cur]] <= threshold[cur]
            node[act] = np.where(goleft, left[cur], right[cur])
        vals = value[node]
        k = int(tree_class[t])
        if k < 0:
            out += lr * vals
        else:
            out[:, k] += lr * vals[:, 0]
    return out


def oblivious_predict(codes, features, thresholds, level_offset,
                      leaf_values, leaf_offset, tree_class, lr, out):
    """Accumulate a packed oblivious ensemble's predictions into ``out``.

    Per-tree layout (:class:`~repro.learners.catboost_like.
    FlatOblivious`): levels ``level_offset[t]:level_offset[t+1]`` of the
    int64 ``features``/``thresholds`` vectors are tree ``t``'s shared
    per-depth splits, and its ``2**depth`` leaf table starts at
    ``leaf_offset[t]`` in the flat float64 ``leaf_values``.  Leaf index
    is the usual bit pack — level ``lvl`` contributes ``(code >
    threshold) << lvl`` — then ``lr * leaf`` is added into column
    ``tree_class[t]`` of ``out``, one tree at a time (the engines'
    historical accumulation order).
    """
    for t in range(tree_class.size):
        lo, hi = int(level_offset[t]), int(level_offset[t + 1])
        idx = np.zeros(codes.shape[0], dtype=np.int64)
        for lvl in range(hi - lo):
            f = int(features[lo + lvl])
            thr = thresholds[lo + lvl]
            idx |= (codes[:, f] > thr).astype(np.int64) << lvl
        vals = leaf_values[int(leaf_offset[t]) + idx]
        out[:, int(tree_class[t])] += lr * vals
    return out


def best_split_scan(hists, nbf, n_idx, G, H, parent, min_child_weight,
                    reg_alpha, reg_lambda, min_samples_leaf, rng=None,
                    t_valid=None):
    """Best ``(gain, j, t)`` over one node's stacked histograms.

    ``j`` indexes into the candidate-feature list the histograms were
    built over; ``(0.0, -1, -1)`` means no valid split.  ``rng`` is the
    extra-trees mode: keep one random valid threshold per feature (the
    native wrapper delegates this mode here because the draw consumes
    the grower's generator mid-scan).  Thresholds are bin codes; split
    sends ``code <= t`` left (missing bin 0 always goes left).
    ``t_valid`` is the threshold-validity mask ``arange(nbmax-1) <
    (nbf-1)[:, None]`` — growers hoist it out of this per-node call
    (the C kernel derives it from ``nbf`` inline and ignores the arg).
    """
    P, F, nbmax = hists.shape
    # one cumulative sum over every (part, feature) row at once
    cs = hists.reshape(P * F, nbmax).cumsum(axis=1).reshape(P, F, nbmax)
    GL = cs[0, :, :-1]
    HL = cs[1, :, :-1]
    GR, HR = G - GL, H - HL
    valid = (HL >= min_child_weight) & (HR >= min_child_weight)
    if t_valid is None:
        # thresholds past a feature's own bin count are no real splits
        t_valid = np.arange(nbmax - 1) < (nbf - 1)[:, None]
    valid &= t_valid
    if P == 3:
        CL = cs[2, :, :-1]
        valid &= (CL >= min_samples_leaf) & (
            n_idx - CL >= min_samples_leaf
        )
    if rng is not None:
        # Extra-trees: keep one random valid threshold per feature.
        keep = np.zeros_like(valid)
        for j in range(F):
            cand = np.nonzero(valid[j])[0]
            if cand.size:
                keep[j, int(rng.choice(cand))] = True
        valid = keep
    if not valid.any():
        return 0.0, -1, -1
    # same association as 0.5*(score(L) + score(R) − parent), built
    # in place to avoid (F, T)-sized temporaries on every node
    gains = _score(GL, HL, reg_alpha, reg_lambda)
    gains += _score(GR, HR, reg_alpha, reg_lambda)
    gains -= parent
    gains *= 0.5
    gains = np.where(valid, gains, -np.inf)
    k = int(gains.argmax())
    j, t = divmod(k, gains.shape[1])
    return float(gains[j, t]), j, t


class ObliviousLevelScorer:
    """Per-tree state for the oblivious whole-level scoring loop.

    Construction hoists everything that is constant across levels (the
    gathered candidate codes with per-feature offsets, the repeated
    grad/hess weight vector, the threshold-validity mask);
    :meth:`score_level` then scores one level from a single flat
    ``np.bincount`` over joint ``(node, feature, bin)`` keys.  The
    layout is bitwise-neutral: every bucket accumulates the same rows
    in the same order as per-feature loops would, and the cumulative
    sums are per-row independent.
    """

    def __init__(self, codes, cand_features, n_bins, grad, hess,
                 min_child_weight, reg_lambda):
        F = cand_features.size
        nbmax = int(n_bins[cand_features].max())
        self.F = F
        self.nbmax = nbmax
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        # joint (feature, bin) codes of the candidate features,
        # gathered once
        fcodes = codes[:, cand_features].astype(np.int64)
        fcodes += np.arange(F, dtype=np.int64)[None, :] * nbmax
        self._fcodes = fcodes
        # grad/hess repeated per feature (and concatenated) once, so
        # each level's histograms come from a single flat bincount
        self._gh = np.concatenate((
            np.repeat(grad, F) if F > 1 else grad,
            np.repeat(hess, F) if F > 1 else hess,
        ))
        self._gh_node = np.concatenate((grad, hess))
        # thresholds past a feature's own bin count are not real splits
        self._t_valid = (
            np.arange(nbmax - 1)[None, :]
            < (n_bins[cand_features] - 1)[:, None]
        )

    def score_level(self, node, lvl):
        """Score level ``lvl`` (``m = 2**lvl`` current nodes); returns
        ``(gain, j, t)`` with ``j = -1`` when no split is accepted."""
        m = 1 << lvl
        F, nbmax = self.F, self.nbmax
        W = m * F * nbmax
        # Node totals (shared across features).
        nodes2 = np.concatenate((node, node + m))
        GnHn = np.bincount(nodes2, weights=self._gh_node, minlength=2 * m)
        Gn, Hn = GnHn[:m], GnHn[m:]
        parent = Gn**2 / (Hn + self.reg_lambda)
        flat = (node[:, None] * (F * nbmax) + self._fcodes).ravel()
        keys = np.concatenate((flat, flat + W))
        hist = np.bincount(keys, weights=self._gh, minlength=2 * W)
        cs = hist.reshape(2 * m * F, nbmax).cumsum(axis=1)
        cs = cs.reshape(2, m, F, nbmax)
        GL = cs[0, :, :, :-1]  # (m, F, T)
        HL = cs[1, :, :, :-1]
        GR = Gn[:, None, None] - GL
        HR = Hn[:, None, None] - HL
        valid = (HL >= self.min_child_weight) & (HR >= self.min_child_weight)
        # same association as 0.5*(GL²/(HL+λ) + GR²/(HR+λ) − parent),
        # assembled in place to avoid temporaries the size of (m, F, T)
        HL += self.reg_lambda
        HR += self.reg_lambda
        gains = GL**2
        gains /= HL
        tmp = GR**2
        tmp /= HR
        gains += tmp
        gains -= parent[:, None, None]
        gains *= 0.5
        total = np.where(valid, gains, 0.0).sum(axis=0)  # (F, T)
        total = np.where(self._t_valid, total, -np.inf)
        # replicate the sequential accept rule exactly: walk features in
        # candidate order, take this feature's best threshold iff it
        # beats the running best by more than _EPS
        best = (0.0, -1, -1)
        per_f_t = np.argmax(total, axis=1)
        per_f_gain = total[np.arange(F), per_f_t]
        for j in range(F):
            if per_f_gain[j] > best[0] + _EPS:
                best = (float(per_f_gain[j]), j, int(per_f_t[j]))
        return best
