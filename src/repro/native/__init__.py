"""Native (C) kernels for the tree-grower hot loops, with a pure-numpy
fallback.

PR 4's profiling showed the 1-core trial ceiling is numpy *dispatch* on
small per-node arrays inside the growers, not the arithmetic itself.
This package pushes the three measured hot loops below the interpreter:

* ``build_hists`` — fused grad/hess[/count] histogram accumulation;
* ``best_split_scan`` — the best-(gain, feature, threshold) scan over
  cumulative histograms;
* ``ObliviousLevelScorer`` — the CatBoost-like whole-level scoring loop.

The compiled kernels are **bitwise identical** to the numpy reference
in :mod:`repro.native.fallback` (same float64 accumulation order, same
argmax tie/NaN semantics — fuzzed by ``tests/native/``), so the golden
trial-error fixtures pass unchanged with the kernels on or off.

Dispatch
--------
``active_kernels()`` returns the compiled-kernel object when native mode
is enabled *and* the extension built, else the fallback module; growers
resolve it once per grower, never per node.  The extension is compiled
on first use (``cc`` + CPython headers, no new runtime deps) into a
per-user cache; a box without a compiler logs one warning and runs on
numpy silently thereafter.

Toggles: ``REPRO_NATIVE=0`` in the environment, or
:func:`set_native_enabled` at runtime (returns the previous setting,
for try/finally use).
"""

from __future__ import annotations

import logging
import os
import threading

from ..obs.metrics import REGISTRY
from . import fallback

__all__ = [
    "active_kernels",
    "fallback",
    "native_available",
    "native_build_error",
    "native_enabled",
    "native_status",
    "set_native_enabled",
]

_ENV_FLAG = "REPRO_NATIVE"
_log = logging.getLogger("repro.native")

_enabled = os.environ.get(_ENV_FLAG, "1").lower() not in ("0", "false", "off")
_flag_lock = threading.Lock()

#: load state: None until the first attempt; the NativeKernels object on
#: success; the attempt is made at most once per process
_kernels = None
_load_attempted = False
_load_error: str | None = None


def _load_native():
    """Build/load the extension once; returns the kernels object or None.

    Failure is a supported configuration (no compiler, no headers): it
    is logged exactly once and every later call returns None instantly,
    leaving the system on the numpy fallback.
    """
    global _kernels, _load_attempted, _load_error
    if _load_attempted:
        return _kernels
    with _flag_lock:
        if _load_attempted:
            return _kernels
        try:
            from . import _build, _native

            _kernels = _native.NativeKernels(_build.load())
        except Exception as exc:
            _load_error = f"{exc}"
            _log.warning(
                "repro.native: C kernel unavailable (%s); "
                "using the pure-numpy fallback", exc,
            )
        _load_attempted = True
    return _kernels


def native_available() -> bool:
    """Whether the compiled kernels built and loaded on this box."""
    return _load_native() is not None


def native_build_error() -> str | None:
    """Why the build failed (None if it succeeded or was never tried)."""
    _load_native()
    return _load_error


def native_enabled() -> bool:
    """Whether grower dispatch currently selects the compiled kernels."""
    return _enabled and native_available()


def set_native_enabled(on: bool) -> bool:
    """Globally enable/disable the native kernels; returns the previous
    setting.  Enabling on a box where the build failed is a no-op (the
    fallback keeps serving)."""
    global _enabled
    with _flag_lock:
        prev, _enabled = _enabled, bool(on)
    return prev


def native_status() -> dict:
    """One diagnostic dict answering "which kernels would run and why":

    ``mode`` is ``"compiled"`` or ``"fallback"``; when falling back,
    ``reason`` says whether that is policy (flag off) or circumstance
    (build failed, with the build error).  Reported by ``/health`` and
    ``python -m repro fit --verbose``.
    """
    available = native_available()
    compiled = _enabled and available
    if compiled:
        reason = None
    elif not _enabled:
        reason = f"disabled ({_ENV_FLAG}=0 or set_native_enabled(False))"
    else:
        reason = f"build failed: {_load_error}"
    return {
        "mode": "compiled" if compiled else "fallback",
        "enabled": _enabled,
        "available": available,
        "reason": reason,
    }


def active_kernels():
    """The kernels object growers should bind: compiled when enabled and
    available, else the numpy fallback module.  Called once per grower —
    per-node code never re-dispatches (which also makes the dispatch
    counter cheap: one inc per grower construction)."""
    if _enabled:
        kernels = _load_native()
        if kernels is not None:
            REGISTRY.counter(
                "repro_native_dispatch_total",
                "Grower kernel bindings, by selected implementation.",
                kernels="native",
            ).inc()
            return kernels
    REGISTRY.counter(
        "repro_native_dispatch_total",
        "Grower kernel bindings, by selected implementation.",
        kernels="fallback",
    ).inc()
    return fallback


def _reset_load_state_for_tests() -> None:
    """Forget the load attempt (build-fallback tests only)."""
    global _kernels, _load_attempted, _load_error
    with _flag_lock:
        _kernels = None
        _load_attempted = False
        _load_error = None
