/* Fused histogram / split-scan kernels for the tree growers.
 *
 * Bitwise contract: every function reproduces the pure-numpy reference
 * in repro/native/fallback.py bit for bit, including IEEE corner cases.
 * The rules that make that possible (verified empirically against
 * numpy and asserted by tests/native/test_kernel_parity.py):
 *
 *  - np.bincount(weights=...) accumulates each bucket sequentially in
 *    input order starting from +0.0 -> plain `+=` loops in row order;
 *  - np.cumsum is a sequential left-to-right accumulation;
 *  - np.ndarray.sum(axis=0) reduces sequentially over the axis,
 *    starting from +0.0 (so -0.0 terms behave like numpy's);
 *  - np.power(x, 2) takes numpy's fast path and equals x*x;
 *  - np.argmax scans in row-major order, strictly-greater replaces,
 *    and the FIRST NaN wins and stops the scan;
 *  - elementwise arithmetic is replicated with the same association
 *    as the numpy expressions (noted per loop below).
 *
 * Compiled with -ffp-contract=off so no FMA contraction can change
 * intermediate roundings relative to numpy's scalar SSE2 arithmetic.
 * No numpy headers: arrays arrive as C-contiguous buffers (PyBUF_SIMPLE
 * fails loudly on anything non-contiguous).
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

/* ------------------------------------------------------------------ */
/* grad/hess[/count] histograms of one tree node.
 *
 * args: codes (y*), itemsize (i), d (n), idx int64 (y*), g float64 (y*),
 *       h float64 (y*), features int64 (y*), nbmax (n), need_cnt (i),
 *       out float64[P, F, nbmax] zeroed (w*)
 *
 * Equivalent numpy: one flat np.bincount over disjoint
 * (part, feature, bin) key ranges -- each bucket accumulates the same
 * rows in the same order as this row-major loop.
 */
static PyObject *
py_build_hists(PyObject *self, PyObject *args)
{
    Py_buffer codes, idx, g, h, feats, out;
    int itemsize, need_cnt;
    Py_ssize_t d, nbmax;

    if (!PyArg_ParseTuple(args, "y*iny*y*y*y*niw*",
                          &codes, &itemsize, &d, &idx, &g, &h, &feats,
                          &nbmax, &need_cnt, &out))
        return NULL;

    {
        const int64_t *idxp = (const int64_t *)idx.buf;
        const double *gp = (const double *)g.buf;
        const double *hp = (const double *)h.buf;
        const int64_t *fp = (const int64_t *)feats.buf;
        double *og = (double *)out.buf;
        const Py_ssize_t ni = idx.len / (Py_ssize_t)sizeof(int64_t);
        const Py_ssize_t F = feats.len / (Py_ssize_t)sizeof(int64_t);
        double *oh = og + F * nbmax;
        double *oc = need_cnt ? og + 2 * F * nbmax : NULL;
        Py_ssize_t r, j;

        if (itemsize == 1) {
            const uint8_t *cp = (const uint8_t *)codes.buf;
            for (r = 0; r < ni; r++) {
                const uint8_t *row = cp + (Py_ssize_t)idxp[r] * d;
                const double gv = gp[r], hv = hp[r];
                for (j = 0; j < F; j++) {
                    const Py_ssize_t o = j * nbmax + (Py_ssize_t)row[fp[j]];
                    og[o] += gv;
                    oh[o] += hv;
                    if (oc)
                        oc[o] += 1.0;
                }
            }
        } else {
            const uint16_t *cp = (const uint16_t *)codes.buf;
            for (r = 0; r < ni; r++) {
                const uint16_t *row = cp + (Py_ssize_t)idxp[r] * d;
                const double gv = gp[r], hv = hp[r];
                for (j = 0; j < F; j++) {
                    const Py_ssize_t o = j * nbmax + (Py_ssize_t)row[fp[j]];
                    og[o] += gv;
                    oh[o] += hv;
                    if (oc)
                        oc[o] += 1.0;
                }
            }
        }
    }

    PyBuffer_Release(&codes);
    PyBuffer_Release(&idx);
    PyBuffer_Release(&g);
    PyBuffer_Release(&h);
    PyBuffer_Release(&feats);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* soft_threshold(G, alpha)^2 / Hreg, replicating
 * np.sign(G) * np.maximum(np.abs(G) - alpha, 0.0) exactly:
 * np.maximum propagates NaN; np.sign maps +-0.0 -> 0.0 and NaN -> NaN. */
static inline double
score_term(double G, double Hreg, double alpha)
{
    double a = fabs(G) - alpha;
    double mx = (a != a) ? a : (a > 0.0 ? a : 0.0);
    double sgn = (G > 0.0) ? 1.0 : ((G < 0.0) ? -1.0 : ((G == G) ? 0.0 : G));
    double st = sgn * mx;
    return (st * st) / Hreg;
}

/* ------------------------------------------------------------------ */
/* best (gain, feature, threshold) over the cumulative histograms of
 * one node.
 *
 * args: hists float64[P, F, nbmax] (y*), P (i), F (n), nbmax (n),
 *       n_bins_f int64[F] (y*), G (d), H (d), parent (d),
 *       min_child_weight (d), reg_alpha (d), reg_lambda (d),
 *       min_samples_leaf (n), n_idx (n)
 * returns (best_gain, j, t) -- j indexes into the candidate features.
 *
 * Numpy reference: cumsum -> validity masks -> gains assembled as
 * ((score(GL,HL) + score(GR,HR)) - parent) * 0.5 -> where(valid, g,
 * -inf) -> flat argmax (first-NaN-wins).
 */
static PyObject *
py_best_split_scan(PyObject *self, PyObject *args)
{
    Py_buffer hists, nbf;
    int P;
    Py_ssize_t F, nbmax, msl, n_idx;
    double G, H, parent, mcw, alpha, lam;

    if (!PyArg_ParseTuple(args, "y*inny*ddddddnn",
                          &hists, &P, &F, &nbmax, &nbf, &G, &H, &parent,
                          &mcw, &alpha, &lam, &msl, &n_idx))
        return NULL;

    {
        const double *hg = (const double *)hists.buf;
        const double *hh = hg + F * nbmax;
        const double *hc = (P == 3) ? hg + 2 * F * nbmax : NULL;
        const int64_t *nb = (const int64_t *)nbf.buf;
        const Py_ssize_t T = nbmax - 1;
        double best = 0.0;
        Py_ssize_t bi = 0;
        int started = 0, any_valid = 0;
        Py_ssize_t j, t;

        if (T <= 0) {
            PyBuffer_Release(&hists);
            PyBuffer_Release(&nbf);
            return Py_BuildValue("dnn", 0.0, (Py_ssize_t)-1, (Py_ssize_t)-1);
        }
        for (j = 0; j < F; j++) {
            const double *rg = hg + j * nbmax;
            const double *rh = hh + j * nbmax;
            const double *rc = hc ? hc + j * nbmax : NULL;
            const Py_ssize_t tmax = (Py_ssize_t)nb[j] - 1;
            double gl = 0.0, hl = 0.0, cl = 0.0;

            for (t = 0; t < T; t++) {
                double hr, v;
                int valid;

                gl += rg[t];
                hl += rh[t];
                if (rc)
                    cl += rc[t];
                hr = H - hl;
                valid = (hl >= mcw) && (hr >= mcw) && (t < tmax);
                if (rc)
                    valid = valid && (cl >= (double)msl)
                            && ((double)n_idx - cl >= (double)msl);
                if (valid) {
                    /* same association as gains = score(GL,HL);
                     * gains += score(GR,HR); gains -= parent;
                     * gains *= 0.5 */
                    double gr = G - gl;
                    double sl = score_term(gl, hl + lam, alpha);
                    double sr = score_term(gr, hr + lam, alpha);
                    v = ((sl + sr) - parent) * 0.5;
                    any_valid = 1;
                } else {
                    v = -INFINITY;
                }
                /* np.argmax over the flat row-major (F, T) array */
                if (!started) {
                    best = v;
                    bi = 0;
                    started = 1;
                    if (isnan(v))
                        goto done;
                } else if (v > best || isnan(v)) {
                    best = v;
                    bi = j * T + t;
                    if (isnan(v))
                        goto done;
                }
            }
        }
done:
        PyBuffer_Release(&hists);
        PyBuffer_Release(&nbf);
        if (!any_valid) /* the reference's `not valid.any()` early exit */
            return Py_BuildValue("dnn", 0.0, (Py_ssize_t)-1, (Py_ssize_t)-1);
        return Py_BuildValue("dnn", best, bi / T, bi % T);
    }
}

/* ------------------------------------------------------------------ */
/* one whole level of an oblivious tree: node totals, joint
 * (node, feature, bin) histograms, summed per-node gains, per-feature
 * argmax and the sequential accept walk -- all fused.
 *
 * args: codes_f (y*, n x F gathered candidate columns), itemsize (i),
 *       node int64[n] (y*), grad float64[n] (y*), hess float64[n] (y*),
 *       n_bins_f int64[F] (y*), F (n), m (n), nbmax (n),
 *       min_child_weight (d), reg_lambda (d), eps (d)
 * returns (gain, j, t); j = -1 when no level split is accepted.
 */
static PyObject *
py_oblivious_level(PyObject *self, PyObject *args)
{
    Py_buffer codes, node, grad, hess, nbf;
    int itemsize;
    Py_ssize_t F, m, nbmax;
    double mcw, lam, eps;
    double *Gn = NULL, *hist = NULL, *total = NULL;
    PyObject *result = NULL;

    if (!PyArg_ParseTuple(args, "y*iy*y*y*y*nnnddd",
                          &codes, &itemsize, &node, &grad, &hess, &nbf,
                          &F, &m, &nbmax, &mcw, &lam, &eps))
        return NULL;

    {
        const int64_t *nd = (const int64_t *)node.buf;
        const double *gp = (const double *)grad.buf;
        const double *hp = (const double *)hess.buf;
        const int64_t *nb = (const int64_t *)nbf.buf;
        const Py_ssize_t n = node.len / (Py_ssize_t)sizeof(int64_t);
        const Py_ssize_t T = nbmax - 1;
        double *Hn, *hist2;
        double bestg = 0.0;
        Py_ssize_t bj = -1, bt = -1;
        Py_ssize_t r, j, t, k;

        Gn = (double *)calloc((size_t)(2 * m), sizeof(double));
        hist = (double *)calloc((size_t)(2 * m * F * nbmax), sizeof(double));
        total = (double *)calloc((size_t)(F * T), sizeof(double));
        if (!Gn || !hist || !total) {
            PyErr_NoMemory();
            goto cleanup;
        }
        Hn = Gn + m;
        hist2 = hist + m * F * nbmax;

        /* node totals + joint histograms, both accumulated in row
         * order per bucket (== np.bincount over concatenated keys) */
        if (itemsize == 1) {
            const uint8_t *cp = (const uint8_t *)codes.buf;
            for (r = 0; r < n; r++) {
                const Py_ssize_t nk = (Py_ssize_t)nd[r];
                const double gv = gp[r], hv = hp[r];
                const uint8_t *row = cp + r * F;
                double *bg = hist + nk * F * nbmax;
                double *bh = hist2 + nk * F * nbmax;
                Gn[nk] += gv;
                Hn[nk] += hv;
                for (j = 0; j < F; j++) {
                    const Py_ssize_t o = j * nbmax + (Py_ssize_t)row[j];
                    bg[o] += gv;
                    bh[o] += hv;
                }
            }
        } else {
            const uint16_t *cp = (const uint16_t *)codes.buf;
            for (r = 0; r < n; r++) {
                const Py_ssize_t nk = (Py_ssize_t)nd[r];
                const double gv = gp[r], hv = hp[r];
                const uint16_t *row = cp + r * F;
                double *bg = hist + nk * F * nbmax;
                double *bh = hist2 + nk * F * nbmax;
                Gn[nk] += gv;
                Hn[nk] += hv;
                for (j = 0; j < F; j++) {
                    const Py_ssize_t o = j * nbmax + (Py_ssize_t)row[j];
                    bg[o] += gv;
                    bh[o] += hv;
                }
            }
        }

        /* total[j,t] = sum over nodes of (valid ? gain : 0.0), node
         * order, starting from +0.0 (numpy's axis-0 reduce) */
        for (k = 0; k < m; k++) {
            /* parent = Gn**2 / (Hn + lam), numpy power-2 fast path */
            const double parentk = (Gn[k] * Gn[k]) / (Hn[k] + lam);
            const double Gk = Gn[k], Hk = Hn[k];
            for (j = 0; j < F; j++) {
                const double *bg = hist + (k * F + j) * nbmax;
                const double *bh = hist2 + (k * F + j) * nbmax;
                double *tj = total + j * T;
                double gl = 0.0, hl = 0.0;
                for (t = 0; t < T; t++) {
                    double hr, v;
                    gl += bg[t];
                    hl += bh[t];
                    hr = Hk - hl;
                    if (hl >= mcw && hr >= mcw) {
                        /* same association as gains = GL**2; /= HL+lam;
                         * tmp = GR**2; /= HR+lam; gains += tmp;
                         * gains -= parent; gains *= 0.5 */
                        double gr = Gk - gl;
                        double a = (gl * gl) / (hl + lam);
                        double b = (gr * gr) / (hr + lam);
                        v = ((a + b) - parentk) * 0.5;
                    } else {
                        v = 0.0;
                    }
                    tj[t] += v;
                }
            }
        }

        /* per-feature argmax over where(t_valid, total, -inf), then the
         * sequential accept walk: take feature j's best iff it beats
         * the running best by more than eps */
        for (j = 0; j < F; j++) {
            const double *tj = total + j * T;
            const Py_ssize_t tmax = (Py_ssize_t)nb[j] - 1;
            double mp = (0 < tmax) ? tj[0] : -INFINITY;
            Py_ssize_t mi = 0;
            if (!isnan(mp)) {
                for (t = 1; t < T; t++) {
                    const double v = (t < tmax) ? tj[t] : -INFINITY;
                    if (v > mp || isnan(v)) {
                        mp = v;
                        mi = t;
                        if (isnan(v))
                            break;
                    }
                }
            }
            if (mp > bestg + eps) {
                bestg = mp;
                bj = j;
                bt = mi;
            }
        }
        result = Py_BuildValue("dnn", bestg, bj, bt);
    }

cleanup:
    free(Gn);
    free(hist);
    free(total);
    PyBuffer_Release(&codes);
    PyBuffer_Release(&node);
    PyBuffer_Release(&grad);
    PyBuffer_Release(&hess);
    PyBuffer_Release(&nbf);
    return result;
}

/* ------------------------------------------------------------------ */
/* joint (class, feature, bin) count histograms of one node.
 *
 * args: codes (y*), itemsize (i), d (n), idx int64 (y*), yk int64 (y*),
 *       w float64 (y*, ignored when has_w == 0), has_w (i),
 *       features int64 (y*), nbmax (n),
 *       out float64[K, F, nbmax] zeroed (w*)
 *
 * Equivalent numpy: one flat np.bincount over yk*(F*nbmax) + j*nbmax +
 * code keys -- each bucket accumulates its rows in idx order, exactly
 * this row-major loop.  Unweighted accumulation adds 1.0 per row,
 * matching bincount's integer counts cast to float64 (every int count
 * below 2^53 is exact).
 */
static PyObject *
py_build_class_hists(PyObject *self, PyObject *args)
{
    Py_buffer codes, idx, yk, w, feats, out;
    int itemsize, has_w;
    Py_ssize_t d, nbmax;

    if (!PyArg_ParseTuple(args, "y*iny*y*y*iy*nw*",
                          &codes, &itemsize, &d, &idx, &yk, &w, &has_w,
                          &feats, &nbmax, &out))
        return NULL;

    {
        const int64_t *idxp = (const int64_t *)idx.buf;
        const int64_t *ykp = (const int64_t *)yk.buf;
        const double *wp = (const double *)w.buf;
        const int64_t *fp = (const int64_t *)feats.buf;
        double *op = (double *)out.buf;
        const Py_ssize_t ni = idx.len / (Py_ssize_t)sizeof(int64_t);
        const Py_ssize_t F = feats.len / (Py_ssize_t)sizeof(int64_t);
        Py_ssize_t r, j;

        if (itemsize == 1) {
            const uint8_t *cp = (const uint8_t *)codes.buf;
            for (r = 0; r < ni; r++) {
                const uint8_t *row = cp + (Py_ssize_t)idxp[r] * d;
                double *base = op + (Py_ssize_t)ykp[r] * F * nbmax;
                const double wv = has_w ? wp[r] : 1.0;
                for (j = 0; j < F; j++)
                    base[j * nbmax + (Py_ssize_t)row[fp[j]]] += wv;
            }
        } else {
            const uint16_t *cp = (const uint16_t *)codes.buf;
            for (r = 0; r < ni; r++) {
                const uint16_t *row = cp + (Py_ssize_t)idxp[r] * d;
                double *base = op + (Py_ssize_t)ykp[r] * F * nbmax;
                const double wv = has_w ? wp[r] : 1.0;
                for (j = 0; j < F; j++)
                    base[j * nbmax + (Py_ssize_t)row[fp[j]]] += wv;
            }
        }
    }

    PyBuffer_Release(&codes);
    PyBuffer_Release(&idx);
    PyBuffer_Release(&yk);
    PyBuffer_Release(&w);
    PyBuffer_Release(&feats);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* batched binned-code descent over a packed tree ensemble, accumulated
 * into the caller's score matrix in place.
 *
 * args: codes (y*), itemsize (i), d (n), feature int64 (y*),
 *       threshold int64 (y*), left int64 (y*), right int64 (y*),
 *       value float64[total_nodes, V] (y*), V (n),
 *       tree_offset int64[n_trees + 1] (y*), tree_class int64 (y*),
 *       lr (d), out float64[n, K] (w*), K (n)
 *
 * Node arrays are the FlatEnsemble pack: child ids absolute, leaves
 * marked feature < 0, tree_offset[t] the root of tree t.  Per row the
 * trees run in order and each contributes one lr*value product + one
 * add per touched cell -- the exact per-cell operation chain of the
 * engines' historical `scores += lr * tree.predict(codes)` loop (numpy
 * adds tree-by-tree too, so per cell the order and the two roundings
 * match).  tree_class k >= 0 touches column k with value[leaf, 0];
 * -1 adds the whole V-row (forest-probability trees).  Descent is pure
 * integer compare (code <= threshold goes left), so leaf choice is
 * exact.
 */
static PyObject *
py_ensemble_predict(PyObject *self, PyObject *args)
{
    Py_buffer codes, feat, thr, left, right, value, toff, tcls, out;
    int itemsize;
    Py_ssize_t d, V, K;
    double lr;

    if (!PyArg_ParseTuple(args, "y*iny*y*y*y*y*ny*y*dw*n",
                          &codes, &itemsize, &d, &feat, &thr, &left, &right,
                          &value, &V, &toff, &tcls, &lr, &out, &K))
        return NULL;

    {
        const int64_t *fe = (const int64_t *)feat.buf;
        const int64_t *th = (const int64_t *)thr.buf;
        const int64_t *lf = (const int64_t *)left.buf;
        const int64_t *rt = (const int64_t *)right.buf;
        const double *val = (const double *)value.buf;
        const int64_t *off = (const int64_t *)toff.buf;
        const int64_t *cls = (const int64_t *)tcls.buf;
        double *op = (double *)out.buf;
        const Py_ssize_t ntrees = tcls.len / (Py_ssize_t)sizeof(int64_t);
        const Py_ssize_t n = (K > 0)
            ? out.len / ((Py_ssize_t)sizeof(double) * K) : 0;
        Py_ssize_t r, t, c;

        if (itemsize == 1) {
            const uint8_t *cp = (const uint8_t *)codes.buf;
            for (r = 0; r < n; r++) {
                const uint8_t *row = cp + r * d;
                double *orow = op + r * K;
                for (t = 0; t < ntrees; t++) {
                    int64_t node = off[t];
                    while (fe[node] >= 0)
                        node = ((int64_t)row[fe[node]] <= th[node])
                            ? lf[node] : rt[node];
                    {
                        const double *v = val + (Py_ssize_t)node * V;
                        const int64_t k = cls[t];
                        if (k < 0)
                            for (c = 0; c < V; c++)
                                orow[c] += lr * v[c];
                        else
                            orow[k] += lr * v[0];
                    }
                }
            }
        } else {
            const uint16_t *cp = (const uint16_t *)codes.buf;
            for (r = 0; r < n; r++) {
                const uint16_t *row = cp + r * d;
                double *orow = op + r * K;
                for (t = 0; t < ntrees; t++) {
                    int64_t node = off[t];
                    while (fe[node] >= 0)
                        node = ((int64_t)row[fe[node]] <= th[node])
                            ? lf[node] : rt[node];
                    {
                        const double *v = val + (Py_ssize_t)node * V;
                        const int64_t k = cls[t];
                        if (k < 0)
                            for (c = 0; c < V; c++)
                                orow[c] += lr * v[c];
                        else
                            orow[k] += lr * v[0];
                    }
                }
            }
        }
    }

    PyBuffer_Release(&codes);
    PyBuffer_Release(&feat);
    PyBuffer_Release(&thr);
    PyBuffer_Release(&left);
    PyBuffer_Release(&right);
    PyBuffer_Release(&value);
    PyBuffer_Release(&toff);
    PyBuffer_Release(&tcls);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* oblivious-table lookup over a packed symmetric-tree ensemble:
 * per-level bit pack of the leaf index + leaf-table gather, accumulated
 * into the caller's score matrix in place.
 *
 * args: codes (y*), itemsize (i), d (n), features int64 (y*),
 *       thresholds int64 (y*), level_offset int64[n_trees + 1] (y*),
 *       leaf_values float64 flat (y*), leaf_offset int64[n_trees + 1]
 *       (y*), tree_class int64 (y*), lr (d), out float64[n, K] (w*),
 *       K (n)
 *
 * FlatOblivious pack: tree t's per-depth splits are levels
 * level_offset[t]..level_offset[t+1] and its 2^depth leaf table starts
 * at leaf_offset[t].  Leaf index is the exact integer bit pack of
 * ObliviousTree.leaf_index ((code > threshold) << lvl); the accumulate
 * is one lr*leaf product + one add per (row, tree), tree order -- the
 * engines' historical per-cell chain.
 */
static PyObject *
py_oblivious_predict(PyObject *self, PyObject *args)
{
    Py_buffer codes, feat, thr, loff, leaf, lfoff, tcls, out;
    int itemsize;
    Py_ssize_t d, K;
    double lr;

    if (!PyArg_ParseTuple(args, "y*iny*y*y*y*y*y*dw*n",
                          &codes, &itemsize, &d, &feat, &thr, &loff, &leaf,
                          &lfoff, &tcls, &lr, &out, &K))
        return NULL;

    {
        const int64_t *fe = (const int64_t *)feat.buf;
        const int64_t *th = (const int64_t *)thr.buf;
        const int64_t *lo = (const int64_t *)loff.buf;
        const double *lv = (const double *)leaf.buf;
        const int64_t *fo = (const int64_t *)lfoff.buf;
        const int64_t *cls = (const int64_t *)tcls.buf;
        double *op = (double *)out.buf;
        const Py_ssize_t ntrees = tcls.len / (Py_ssize_t)sizeof(int64_t);
        const Py_ssize_t n = (K > 0)
            ? out.len / ((Py_ssize_t)sizeof(double) * K) : 0;
        Py_ssize_t r, t, l;

        if (itemsize == 1) {
            const uint8_t *cp = (const uint8_t *)codes.buf;
            for (r = 0; r < n; r++) {
                const uint8_t *row = cp + r * d;
                double *orow = op + r * K;
                for (t = 0; t < ntrees; t++) {
                    int64_t idx = 0;
                    const Py_ssize_t l0 = (Py_ssize_t)lo[t];
                    const Py_ssize_t l1 = (Py_ssize_t)lo[t + 1];
                    for (l = l0; l < l1; l++)
                        idx |= (int64_t)((int64_t)row[fe[l]] > th[l])
                            << (l - l0);
                    orow[cls[t]] += lr * lv[(Py_ssize_t)fo[t] + idx];
                }
            }
        } else {
            const uint16_t *cp = (const uint16_t *)codes.buf;
            for (r = 0; r < n; r++) {
                const uint16_t *row = cp + r * d;
                double *orow = op + r * K;
                for (t = 0; t < ntrees; t++) {
                    int64_t idx = 0;
                    const Py_ssize_t l0 = (Py_ssize_t)lo[t];
                    const Py_ssize_t l1 = (Py_ssize_t)lo[t + 1];
                    for (l = l0; l < l1; l++)
                        idx |= (int64_t)((int64_t)row[fe[l]] > th[l])
                            << (l - l0);
                    orow[cls[t]] += lr * lv[(Py_ssize_t)fo[t] + idx];
                }
            }
        }
    }

    PyBuffer_Release(&codes);
    PyBuffer_Release(&feat);
    PyBuffer_Release(&thr);
    PyBuffer_Release(&loff);
    PyBuffer_Release(&leaf);
    PyBuffer_Release(&lfoff);
    PyBuffer_Release(&tcls);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
static PyMethodDef kernel_methods[] = {
    {"build_hists", py_build_hists, METH_VARARGS,
     "Accumulate (grad, hess[, count]) node histograms in row order."},
    {"best_split_scan", py_best_split_scan, METH_VARARGS,
     "Best (gain, feature, threshold) over cumulative histograms."},
    {"oblivious_level", py_oblivious_level, METH_VARARGS,
     "Score one whole oblivious-tree level."},
    {"build_class_hists", py_build_class_hists, METH_VARARGS,
     "Accumulate joint (class, feature, bin) node histograms."},
    {"ensemble_predict", py_ensemble_predict, METH_VARARGS,
     "Batched binned-code descent over a packed tree ensemble."},
    {"oblivious_predict", py_oblivious_predict, METH_VARARGS,
     "Oblivious leaf-table lookup over a packed symmetric ensemble."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT, "_repro_native",
    "Compiled histogram/split kernels (bitwise-equal to repro.native."
    "fallback).",
    -1, kernel_methods,
};

PyMODINIT_FUNC
PyInit__repro_native(void)
{
    return PyModule_Create(&kernel_module);
}
