"""Compile-on-first-use machinery for the native kernels.

The extension is a single C file with no dependencies beyond the CPython
headers (arrays cross as plain buffers, so numpy headers are not
needed).  It is compiled with the system C compiler into a per-user
cache directory, keyed by the source hash and interpreter tag, and
loaded from there — a fresh checkout never needs a build step, an
upgraded source never collides with a stale binary, and a box without a
compiler simply gets ``NativeBuildError`` (which ``repro.native``
converts into the silent numpy fallback).

``-ffp-contract=off`` is load-bearing: FMA contraction would change
intermediate roundings relative to numpy's scalar arithmetic and break
the bitwise-parity contract.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path

__all__ = ["NativeBuildError", "build", "compiled_path", "load"]

#: module name baked into the C source's PyInit function
MODULE_NAME = "_repro_native"

SOURCE = Path(__file__).with_name("_kernels.c")

#: flags that may not be dropped: -ffp-contract=off preserves bitwise
#: parity with numpy (no FMA contraction of a*b+c)
CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off",
          "-fno-strict-aliasing"]


class NativeBuildError(RuntimeError):
    """The kernel extension could not be compiled or loaded."""


def cache_dir() -> Path:
    """Where compiled kernels live (override: ``REPRO_NATIVE_CACHE``)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env).expanduser()
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-native"


def _build_tag() -> str:
    # the compiler and flags are part of the key: a CFLAGS change (e.g.
    # to the load-bearing -ffp-contract=off) or a CC switch must never
    # silently reuse a binary built under the old recipe
    recipe = SOURCE.read_bytes() + " ".join(_compiler() + CFLAGS).encode()
    src = hashlib.sha256(recipe).hexdigest()[:12]
    impl = sysconfig.get_config_var("SOABI") or (
        f"py{sys.version_info[0]}{sys.version_info[1]}"
    )
    return f"{impl}-{src}"


def compiled_path() -> Path:
    """Target path of the compiled extension for this source/interpreter."""
    return cache_dir() / f"{MODULE_NAME}-{_build_tag()}.so"


def _compiler() -> list[str]:
    """The compiler argv prefix — multi-word values (``CC="ccache gcc"``)
    are kept whole, not truncated to their first token."""
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    return cc.split()


def build(force: bool = False) -> Path:
    """Compile the extension (if not already cached); returns the .so path.

    Raises :class:`NativeBuildError` on any failure — no compiler, no
    CPython headers, or a compile error.  Concurrent builders (process
    workers, parallel test runs) are safe: each compiles to a unique
    temporary file and atomically renames it into place.
    """
    out = compiled_path()
    if out.exists() and not force:
        return out
    from ..faults import maybe_raise

    # chaos site: a failed build must land in the native→numpy fallback,
    # never in a crash (NativeBuildError is what repro.native catches)
    maybe_raise("native.build", exc_type=NativeBuildError)
    include = sysconfig.get_paths()["include"]
    if not Path(include, "Python.h").exists():
        raise NativeBuildError(f"Python.h not found under {include}")
    includes = {include, sysconfig.get_paths().get("platinclude") or include}
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=out.parent)
    os.close(fd)
    cmd = (
        _compiler()
        + CFLAGS
        + [f"-I{inc}" for inc in sorted(includes)]
        + [str(SOURCE), "-o", tmp, "-lm"]
    )
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"{' '.join(cmd)} failed "
                f"({proc.returncode}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, out)
    except NativeBuildError:
        raise
    except Exception as exc:  # missing cc, timeout, unwritable cache, ...
        raise NativeBuildError(f"{type(exc).__name__}: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return out


def load():
    """Build if needed and import the extension module.

    Raises :class:`NativeBuildError` if the build or the import fails.
    """
    so = build()
    spec = importlib.util.spec_from_file_location(MODULE_NAME, so)
    if spec is None or spec.loader is None:
        raise NativeBuildError(f"cannot create import spec for {so}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise NativeBuildError(
            f"compiled kernel failed to import: {exc}"
        ) from exc
    return module
