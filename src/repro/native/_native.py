"""Thin Python wrappers giving the C extension the fallback's API.

:class:`NativeKernels` exposes exactly the surface of
:mod:`repro.native.fallback` — ``build_hists``, ``build_class_hists``,
``best_split_scan``, ``ObliviousLevelScorer`` and the traversal pair
``ensemble_predict``/``oblivious_predict`` — so growers and engines
hold one "kernels" object and never branch per node.  The wrappers only normalise dtypes/contiguity
(no-ops on the growers' own arrays) and allocate outputs; all arithmetic
lives in ``_kernels.c`` and is bitwise-equal to the fallback.
"""

from __future__ import annotations

import numpy as np

from . import fallback
from .fallback import _EPS  # single source of the gain tie-break epsilon

__all__ = ["NativeKernels"]


def _i64(arr: np.ndarray) -> np.ndarray:
    if arr.dtype == np.int64 and arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr, dtype=np.int64)


def _f64(arr: np.ndarray) -> np.ndarray:
    if arr.dtype == np.float64 and arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr, dtype=np.float64)


def _c_codes(codes: np.ndarray) -> bool:
    """Whether the C kernels can read this codes array directly.

    The C loops stride by itemsize and trust uint8/uint16 layouts — a
    wider integer dtype (legal on the public grower APIs, and handled
    fine by the numpy reference) would be silently misread, so those
    inputs route to the fallback instead.
    """
    return codes.dtype in (np.uint8, np.uint16)


class _ObliviousLevelScorer:
    """Native counterpart of ``fallback.ObliviousLevelScorer``."""

    def __init__(self, cmod, codes, cand_features, n_bins, grad, hess,
                 min_child_weight, reg_lambda):
        self._c = cmod
        # gather the candidate columns once per tree (a no-op view when
        # every feature is a candidate in order, the common case)
        if cand_features.size == codes.shape[1] and np.array_equal(
            cand_features, np.arange(codes.shape[1])
        ):
            self._codes_f = np.ascontiguousarray(codes)
        else:
            self._codes_f = np.ascontiguousarray(codes[:, cand_features])
        self._nbf = _i64(n_bins[cand_features])
        self._grad = _f64(grad)
        self._hess = _f64(hess)
        self.F = int(cand_features.size)
        self.nbmax = int(self._nbf.max())
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)

    def score_level(self, node, lvl):
        return self._c.oblivious_level(
            self._codes_f, self._codes_f.dtype.itemsize, node,
            self._grad, self._hess, self._nbf, self.F, 1 << lvl,
            self.nbmax, self.min_child_weight, self.reg_lambda, _EPS,
        )


class NativeKernels:
    """Kernels object backed by the compiled ``_repro_native`` module."""

    is_native = True

    def __init__(self, cmod) -> None:
        self._c = cmod

    def build_hists(self, codes, g, h, idx, features, n_bins, nbmax,
                    need_cnt, all_features=False):
        if not _c_codes(codes):
            return fallback.build_hists(codes, g, h, idx, features,
                                        n_bins, nbmax, need_cnt,
                                        all_features=all_features)
        features = _i64(features)
        F = features.size
        out = np.zeros((3 if need_cnt else 2, F, nbmax))
        self._c.build_hists(
            codes, codes.dtype.itemsize, codes.shape[1], _i64(idx),
            _f64(g), _f64(h), features, nbmax, 1 if need_cnt else 0, out,
        )
        return out

    def best_split_scan(self, hists, nbf, n_idx, G, H, parent,
                        min_child_weight, reg_alpha, reg_lambda,
                        min_samples_leaf, rng=None, t_valid=None):
        # t_valid is the fallback's hoisted threshold mask; the C scan
        # derives the same predicate from nbf inline, so it is unused
        if rng is not None:
            # extra-trees threshold draws consume the grower's RNG
            # mid-scan; that mode stays on the numpy reference path
            return fallback.best_split_scan(
                hists, nbf, n_idx, G, H, parent, min_child_weight,
                reg_alpha, reg_lambda, min_samples_leaf, rng=rng,
                t_valid=t_valid,
            )
        P, F, nbmax = hists.shape
        return self._c.best_split_scan(
            hists, P, F, nbmax, _i64(nbf), G, H, parent,
            min_child_weight, reg_alpha, reg_lambda,
            int(min_samples_leaf), int(n_idx),
        )

    def build_class_hists(self, codes, yk, idx, w, features, n_classes,
                          nbmax, all_features=False):
        if not (_c_codes(codes) and codes.flags.c_contiguous):
            return fallback.build_class_hists(
                codes, yk, idx, w, features, n_classes, nbmax,
                all_features=all_features,
            )
        features = _i64(features)
        out = np.zeros((n_classes, features.size, nbmax))
        self._c.build_class_hists(
            codes, codes.dtype.itemsize, codes.shape[1], _i64(idx),
            _i64(yk), b"" if w is None else _f64(w),
            0 if w is None else 1, features, nbmax, out,
        )
        return out

    def ensemble_predict(self, codes, feature, threshold, left, right,
                         value, tree_offset, tree_class, lr, out):
        if not (_c_codes(codes) and codes.flags.c_contiguous
                and out.flags.c_contiguous):
            return fallback.ensemble_predict(
                codes, feature, threshold, left, right, value,
                tree_offset, tree_class, lr, out,
            )
        self._c.ensemble_predict(
            codes, codes.dtype.itemsize, codes.shape[1], _i64(feature),
            _i64(threshold), _i64(left), _i64(right), _f64(value),
            value.shape[1], _i64(tree_offset), _i64(tree_class),
            float(lr), out, out.shape[1],
        )
        return out

    def oblivious_predict(self, codes, features, thresholds, level_offset,
                          leaf_values, leaf_offset, tree_class, lr, out):
        if not (_c_codes(codes) and codes.flags.c_contiguous
                and out.flags.c_contiguous):
            return fallback.oblivious_predict(
                codes, features, thresholds, level_offset, leaf_values,
                leaf_offset, tree_class, lr, out,
            )
        self._c.oblivious_predict(
            codes, codes.dtype.itemsize, codes.shape[1], _i64(features),
            _i64(thresholds), _i64(level_offset), _f64(leaf_values),
            _i64(leaf_offset), _i64(tree_class), float(lr), out,
            out.shape[1],
        )
        return out

    def ObliviousLevelScorer(self, codes, cand_features, n_bins, grad,
                             hess, min_child_weight, reg_lambda):
        if not _c_codes(codes):
            return fallback.ObliviousLevelScorer(
                codes, cand_features, n_bins, grad, hess,
                min_child_weight, reg_lambda,
            )
        return _ObliviousLevelScorer(
            self._c, codes, cand_features, n_bins, grad, hess,
            min_child_weight, reg_lambda,
        )
