"""Tree-structured Parzen Estimator (TPE) over FLAML-style search spaces.

The Bayesian-optimisation core shared by the BOHB, auto-sklearn-like and
cloud-like baselines.  Observations are split into a "good" quantile and
the rest; candidates are drawn from a diagonal-Gaussian KDE fitted to the
good set (in the unit cube) and ranked by the density ratio l(x)/g(x) —
the standard TPE acquisition.
"""

from __future__ import annotations

import numpy as np

from ..core.space import SearchSpace

__all__ = ["TPESampler"]


class TPESampler:
    """TPE proposals for a single :class:`SearchSpace`."""

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        gamma: float = 0.25,
        n_candidates: int = 24,
        min_points: int = 8,
        bandwidth_floor: float = 0.08,
    ) -> None:
        self.space = space
        self.rng = rng
        self.gamma = float(gamma)
        self.n_candidates = int(n_candidates)
        self.min_points = int(min_points)
        self.bandwidth_floor = float(bandwidth_floor)
        self._X: list[np.ndarray] = []  # unit-cube points
        self._y: list[float] = []

    def observe(self, config: dict, error: float) -> None:
        """Record a finished (config, error) observation; inf errors are dropped."""
        if np.isfinite(error):
            self._X.append(self.space.to_unit(config))
            self._y.append(float(error))

    # ------------------------------------------------------------------
    def _kde_logpdf(self, X: np.ndarray, pts: np.ndarray) -> np.ndarray:
        """Mixture-of-gaussians log density of rows of X under centers pts."""
        bw = max(self.bandwidth_floor, pts.shape[0] ** (-1.0 / (pts.shape[1] + 4)))
        # (n_x, n_pts, d) squared distances
        d2 = ((X[:, None, :] - pts[None, :, :]) / bw) ** 2
        log_kernel = -0.5 * d2.sum(axis=2) - pts.shape[1] * np.log(bw)
        m = log_kernel.max(axis=1)
        return m + np.log(np.exp(log_kernel - m[:, None]).mean(axis=1))

    def propose(self) -> dict:
        """Next configuration: random until enough data, then TPE."""
        if len(self._y) < self.min_points:
            return self.space.sample(self.rng)
        y = np.asarray(self._y)
        X = np.stack(self._X)
        n_good = max(2, int(np.ceil(self.gamma * len(y))))
        order = np.argsort(y, kind="mergesort")
        good, bad = X[order[:n_good]], X[order[n_good:]]
        if bad.shape[0] < 2:
            return self.space.sample(self.rng)
        # sample candidates from the good KDE (perturbed good points)
        centers = good[self.rng.integers(0, good.shape[0], self.n_candidates)]
        bw = max(
            self.bandwidth_floor, good.shape[0] ** (-1.0 / (good.shape[1] + 4))
        )
        cands = np.clip(
            centers + self.rng.standard_normal(centers.shape) * bw, 0.0, 1.0
        )
        score = self._kde_logpdf(cands, good) - self._kde_logpdf(cands, bad)
        return self.space.from_unit(cands[int(np.argmax(score))])
