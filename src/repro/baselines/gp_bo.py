"""Gaussian-process Bayesian optimisation with EI and EIperSec acquisition.

The paper (§4.2, step 1) discusses Snoek et al.'s *Expected Improvement
per Second* — a cost-aware acquisition for BO — and argues it is designed
for a different context (within-model hyperparameter tuning) and "not
applicable to our goal of learner selection".  This baseline makes that
comparison concrete: a GP surrogate over each learner's unit cube with

* ``acquisition='ei'``       — classic expected improvement, and
* ``acquisition='ei_per_sec'`` — EI divided by a predicted cost (a second
  GP fitted to log trial cost),

with learners picked by the best acquisition value across models.  Exact
GP regression (RBF kernel, Cholesky) is used; trial counts in FLAML-scale
budgets are small enough that O(n^3) is irrelevant.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from ..core.controller import SearchResult
from ..core.resampling import choose_resampling
from ..core.space import SearchSpace
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem, BudgetedRunner

__all__ = ["GPRegressor", "GPEIBaseline"]


class GPRegressor:
    """Minimal exact GP with an RBF kernel and white noise."""

    def __init__(self, length_scale: float = 0.3, noise: float = 1e-3) -> None:
        self.length_scale = float(length_scale)
        self.noise = float(noise)
        self._X: np.ndarray | None = None

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d2 = ((A[:, None, :] - B[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-0.5 * d2 / self.length_scale**2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GPRegressor":
        """Fit the GP to (X, y); y is standardised internally."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64)
        self._ymu = float(y.mean())
        self._ysd = float(y.std()) or 1.0
        yn = (y - self._ymu) / self._ysd
        K = self._kernel(X, X) + self.noise * np.eye(X.shape[0])
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._X = X
        return self

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at X."""
        if self._X is None:
            raise RuntimeError("GP not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Ks = self._kernel(X, self._X)
        mu = Ks @ self._alpha
        v = cho_solve(self._chol, Ks.T)
        var = np.maximum(1.0 - (Ks * v.T).sum(axis=1), 1e-12)
        return mu * self._ysd + self._ymu, np.sqrt(var) * self._ysd


def expected_improvement(mu: np.ndarray, sd: np.ndarray, best: float) -> np.ndarray:
    """EI for *minimisation*: E[max(best - f, 0)]."""
    z = (best - mu) / sd
    return (best - mu) * norm.cdf(z) + sd * norm.pdf(z)


class GPEIBaseline(AutoMLSystem):
    """GP-BO over FLAML's spaces with EI or EIperSec acquisition."""

    def __init__(
        self,
        acquisition: str = "ei",
        n_candidates: int = 50,
        n_init: int = 3,
        estimator_list: list[str] | None = None,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_trials: int | None = None,
    ) -> None:
        if acquisition not in ("ei", "ei_per_sec"):
            raise ValueError(f"unknown acquisition {acquisition!r}")
        self.acquisition = acquisition
        self.n_candidates = int(n_candidates)
        self.n_init = int(n_init)
        self.estimator_list = estimator_list
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.max_trials = max_trials
        self.name = "GP-EI" if acquisition == "ei" else "GP-EIperSec"

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run GP-BO with the configured acquisition within the budget."""
        rng = np.random.default_rng(seed)
        learners = self._learners(data.task, self.estimator_list)
        spaces: dict[str, SearchSpace] = {
            n: s.space_fn(data.n, data.task) for n, s in learners.items()
        }
        resampling = choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=self.cv_instance_threshold,
            rate_threshold=self.cv_rate_threshold,
        )
        runner = BudgetedRunner(
            data, learners, metric, time_budget, resampling, seed=seed,
            max_trials=self.max_trials,
        )
        obs: dict[str, list[tuple[np.ndarray, float, float]]] = {
            n: [] for n in learners
        }
        names = list(learners)

        def record(lname, u, cfg):
            err = runner.run_trial(lname, cfg)
            cost = runner.trials[-1].cost
            if np.isfinite(err):
                obs[lname].append((u, err, cost))

        # initial random design per learner
        for lname in names:
            for _ in range(self.n_init):
                if runner.out_of_budget:
                    break
                cfg = spaces[lname].sample(rng)
                record(lname, spaces[lname].to_unit(cfg), cfg)

        while not runner.out_of_budget:
            best_overall = runner.best_error
            best_choice = None  # (acq_value, lname, unit_point)
            for lname in names:
                pts = obs[lname]
                if len(pts) < 2:
                    u = spaces[lname].to_unit(spaces[lname].sample(rng))
                    best_choice = (np.inf, lname, u)
                    break
                X = np.stack([p[0] for p in pts])
                errs = np.array([p[1] for p in pts])
                gp = GPRegressor().fit(X, errs)
                cands = rng.random((self.n_candidates, spaces[lname].dim))
                mu, sd = gp.predict(cands)
                acq = expected_improvement(mu, sd, min(best_overall, errs.min()))
                if self.acquisition == "ei_per_sec":
                    costs = np.log(np.maximum([p[2] for p in pts], 1e-6))
                    gp_cost = GPRegressor().fit(X, np.asarray(costs))
                    mu_c, _ = gp_cost.predict(cands)
                    acq = acq / np.exp(mu_c)
                j = int(np.argmax(acq))
                if best_choice is None or acq[j] > best_choice[0]:
                    best_choice = (float(acq[j]), lname, cands[j])
            _, lname, u = best_choice
            record(lname, u, spaces[lname].from_unit(u))
        return runner.result()
