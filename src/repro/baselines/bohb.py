"""HpBandSter-like baseline: BOHB = Bayesian optimisation + Hyperband.

As in the paper's comparison (§5), this system shares **FLAML's exact
search space and resampling strategy** — it differs only in search order:

* learner choice + hyperparameters are proposed jointly (a TPE model per
  learner, learner picked round-robin weighted by its observation count
  like BOHB's multi-KDE), with *no* cost-aware start — configs anywhere in
  the space can be proposed at any time, which is exactly the behaviour
  Figure 1/Table 3 contrast against FLAML;
* Hyperband runs over the sample-size fidelity: brackets of successive
  halving with factor ``eta`` starting from ``n / eta^s_max``.
"""

from __future__ import annotations

import numpy as np

from ..core.controller import SearchResult
from ..core.resampling import choose_resampling
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem, BudgetedRunner
from .tpe import TPESampler

__all__ = ["BOHB"]


class BOHB(AutoMLSystem):
    """BOHB over FLAML's joint (learner, hyperparameter, sample-size) space."""

    name = "HpBandSter"

    def __init__(
        self,
        eta: int = 3,
        s_max: int = 3,
        estimator_list: list[str] | None = None,
        min_sample: int = 100,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_trials: int | None = None,
    ) -> None:
        self.eta = int(eta)
        self.s_max = int(s_max)
        self.estimator_list = estimator_list
        self.min_sample = int(min_sample)
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.max_trials = max_trials

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run BOHB (TPE + Hyperband brackets) within the budget."""
        rng = np.random.default_rng(seed)
        learners = self._learners(data.task, self.estimator_list)
        resampling = choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=self.cv_instance_threshold,
            rate_threshold=self.cv_rate_threshold,
        )
        runner = BudgetedRunner(
            data, learners, metric, time_budget, resampling, seed=seed,
            max_trials=self.max_trials,
        )
        samplers = {
            name: TPESampler(spec.space_fn(data.n, data.task), rng)
            for name, spec in learners.items()
        }
        names = list(learners)

        # Hyperband brackets, cycled until the budget is exhausted.
        bracket = self.s_max
        while not runner.out_of_budget:
            s = bracket
            n_configs = max(1, int(np.ceil((self.s_max + 1) / (s + 1) * self.eta**s)))
            size = max(self.min_sample, int(data.n / self.eta**s))
            # sample initial rung configs (joint learner choice uniform —
            # BOHB's model has no notion of learner cost)
            rung = []
            for _ in range(n_configs):
                lname = names[int(rng.integers(0, len(names)))]
                rung.append((lname, samplers[lname].propose()))
            while rung and not runner.out_of_budget:
                scored = []
                for lname, cfg in rung:
                    if runner.out_of_budget:
                        break
                    err = runner.run_trial(lname, cfg, sample_size=min(size, data.n))
                    samplers[lname].observe(cfg, err)
                    scored.append((err, lname, cfg))
                # successive halving: keep the top 1/eta at eta x the size
                size *= self.eta
                if size >= data.n and rung and scored:
                    # top configs get one full-size evaluation, then the rung ends
                    scored.sort(key=lambda t: t[0])
                    keep = scored[: max(1, len(scored) // self.eta)]
                    for err, lname, cfg in keep:
                        if runner.out_of_budget:
                            break
                        e = runner.run_trial(lname, cfg, sample_size=data.n)
                        samplers[lname].observe(cfg, e)
                    break
                scored.sort(key=lambda t: t[0])
                rung = [(l, c) for _, l, c in scored[: max(1, len(scored) // self.eta)]]
            bracket = bracket - 1 if bracket > 0 else self.s_max
        return runner.result()
