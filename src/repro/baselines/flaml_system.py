"""FLAML itself (and its §5.2 ablations) behind the common baseline
interface, so the harness can run every system uniformly.

Ablations (Figure 7/8):

* ``roundrobin`` — learners take turns instead of ECI-based sampling;
* ``fulldata``   — every trial uses the full training data;
* ``cv``         — cross-validation regardless of the thresholding rule.
"""

from __future__ import annotations

from ..core.controller import SearchController, SearchResult
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem

__all__ = ["FLAMLSystem", "make_ablation", "ABLATIONS"]


class FLAMLSystem(AutoMLSystem):
    """The paper's system, runnable by the benchmark harness."""

    name = "FLAML"

    def __init__(
        self,
        estimator_list: list[str] | None = None,
        init_sample_size: int = 10_000,
        sample_growth: float = 2.0,
        learner_selection: str = "eci",
        use_sampling: bool = True,
        resampling_override: str | None = None,
        random_init: bool = False,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        fitted_cost_model: bool = False,
        n_workers: int = 1,
        backend: str | None = None,
        trial_cache: bool = True,
        name: str | None = None,
    ) -> None:
        self.estimator_list = estimator_list
        self.init_sample_size = int(init_sample_size)
        self.sample_growth = float(sample_growth)
        self.learner_selection = learner_selection
        self.use_sampling = bool(use_sampling)
        self.resampling_override = resampling_override
        self.random_init = random_init
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.fitted_cost_model = fitted_cost_model
        self.n_workers = int(n_workers)
        self.backend = backend
        self.trial_cache = bool(trial_cache)
        if name:
            self.name = name

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run FLAML's controller within the budget.

        ``n_workers > 1`` (or an explicit non-serial ``backend``) runs
        the search over the parallel controller on the chosen
        :mod:`repro.exec` substrate instead of the sequential loop.
        """
        backend = self.backend
        if backend is None:
            backend = "serial" if self.n_workers == 1 else "thread"
        common = dict(
            time_budget=time_budget,
            seed=seed,
            init_sample_size=self.init_sample_size,
            sample_growth=self.sample_growth,
            learner_selection=self.learner_selection,
            use_sampling=self.use_sampling,
            resampling_override=self.resampling_override,
            cv_instance_threshold=self.cv_instance_threshold,
            cv_rate_threshold=self.cv_rate_threshold,
            fitted_cost_model=self.fitted_cost_model,
            trial_cache=self.trial_cache,
        )
        learners = self._learners(data.task, self.estimator_list)
        if backend == "serial" and self.n_workers == 1:
            controller = SearchController(
                data, learners, metric,
                random_init=self.random_init,
                **common,
            )
        else:
            from ..core.parallel import ParallelSearchController

            controller = ParallelSearchController(
                data, learners, metric,
                n_workers=self.n_workers,
                backend=backend,
                random_init=self.random_init,
                **common,
            )
        return controller.run()


#: ablation name -> constructor kwargs overriding one strategy component
ABLATIONS: dict[str, dict] = {
    "roundrobin": {"learner_selection": "roundrobin"},
    "fulldata": {"use_sampling": False},
    "cv": {"resampling_override": "cv"},
}


def make_ablation(which: str, **kw) -> FLAMLSystem:
    """Build one of the paper's three ablated FLAML variants."""
    try:
        overrides = ABLATIONS[which]
    except KeyError:
        raise ValueError(
            f"unknown ablation {which!r}; known: {sorted(ABLATIONS)}"
        ) from None
    return FLAMLSystem(name=which, **{**kw, **overrides})
