"""H2O-AutoML-like baseline: manual learner order + randomised grid search.

Per the paper's related work: "It performs randomized grid search for each
learner ... The learners are ordered manually and each learner is
allocated a predefined portion of search iterations."  We reproduce that
scheduling: a fixed order (forests first, then boosted trees, then linear,
as H2O does), a fixed time share per learner, and uniform random sampling
from a discretised grid of each learner's space.
"""

from __future__ import annotations

import numpy as np

from ..core.controller import SearchResult
from ..core.resampling import choose_resampling
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem, BudgetedRunner
from .random_search import grid_sample

__all__ = ["H2OLike"]

#: manual learner order + share of the budget allocated to each
_ORDER_AND_SHARE = [
    ("rf", 0.15),
    ("extra_tree", 0.1),
    ("lgbm", 0.3),
    ("xgboost", 0.3),
    ("catboost", 0.1),
    ("lrl1", 0.05),
]


class H2OLike(AutoMLSystem):
    """Ordered per-learner randomised grid search."""

    name = "H2OAutoML"

    def __init__(self, grid_points: int = 7,
                 cv_instance_threshold: int = 100_000,
                 cv_rate_threshold: float = 10e6 / 3600.0,
                 max_trials: int | None = None) -> None:
        self.grid_points = int(grid_points)
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.max_trials = max_trials

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run ordered per-learner randomised grid search within the budget."""
        rng = np.random.default_rng(seed)
        learners = self._learners(data.task)
        resampling = choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=self.cv_instance_threshold,
            rate_threshold=self.cv_rate_threshold,
        )
        runner = BudgetedRunner(
            data, learners, metric, time_budget, resampling, seed=seed,
            max_trials=self.max_trials,
        )
        schedule = [(n, share) for n, share in _ORDER_AND_SHARE if n in learners]
        total_share = sum(share for _, share in schedule)
        for lname, share in schedule:
            space = learners[lname].space_fn(data.n, data.task)
            deadline = runner.elapsed + time_budget * share / total_share
            # the first trial of each learner uses H2O-ish defaults (the
            # middle of the grid), then random grid points
            first = True
            while runner.elapsed < deadline and not runner.out_of_budget:
                cfg = grid_sample(space, rng, self.grid_points, middle=first)
                first = False
                runner.run_trial(lname, cfg)
        # spend any leftover budget on more grid search over all learners
        while not runner.out_of_budget:
            lname = schedule[int(rng.integers(0, len(schedule)))][0]
            space = learners[lname].space_fn(data.n, data.task)
            runner.run_trial(lname, grid_sample(space, rng, self.grid_points))
        return runner.result()
