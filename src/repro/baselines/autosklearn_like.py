"""Auto-sklearn-like baseline: meta-learning warm start + Bayesian
optimisation over the joint {learner, hyperparameter} space (related work
§2).  The warm-start portfolio plays the role of auto-sklearn's
meta-learned pipeline suggestions: a fixed list of configurations that did
well across many tasks — here, hand-picked spreads over each learner's
space (mid-size boosted trees, default forests, regularised linear
models).  All trials use the full training data (auto-sklearn does not
subsample), which is the cost profile FLAML §5 contrasts against.
"""

from __future__ import annotations

import numpy as np

from ..core.controller import SearchResult
from ..core.resampling import choose_resampling
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem, BudgetedRunner
from .tpe import TPESampler

__all__ = ["AutoSklearnLike", "CloudAutoMLLike"]


def _portfolio(task: str) -> list[tuple[str, dict]]:
    """The simulated meta-learning portfolio (learner, config) pairs."""
    boost = [
        {"tree_num": 100, "leaf_num": 31, "learning_rate": 0.1,
         "min_child_weight": 1.0},
        {"tree_num": 400, "leaf_num": 64, "learning_rate": 0.05,
         "min_child_weight": 0.5, "subsample": 0.8},
        {"tree_num": 30, "leaf_num": 10, "learning_rate": 0.3,
         "min_child_weight": 5.0},
    ]
    portfolio: list[tuple[str, dict]] = []
    for cfg in boost:
        portfolio.append(("lgbm", dict(cfg)))
    portfolio.append(("xgboost", dict(boost[0])))
    rf_cfg = {"tree_num": 200, "max_features": 0.5}
    if task != "regression":
        rf_cfg["criterion"] = "gini"
    portfolio.append(("rf", rf_cfg))
    portfolio.append(("lrl1", {"C": 1.0}))
    return portfolio


class AutoSklearnLike(AutoMLSystem):
    """Warm-started BO over {learner, hyperparameters} on full data."""

    name = "Auto-sklearn"
    #: extra fixed start-up cost in seconds (meta-feature computation etc.);
    #: kept tiny by default so short budgets still produce models
    startup_overhead = 0.0
    #: whether the meta-learning portfolio seeds the search
    use_portfolio = True

    def __init__(self, estimator_list: list[str] | None = None,
                 cv_instance_threshold: int = 100_000,
                 cv_rate_threshold: float = 10e6 / 3600.0,
                 max_trials: int | None = None) -> None:
        self.estimator_list = estimator_list
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.max_trials = max_trials

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run the warm-started BO search within the budget."""
        rng = np.random.default_rng(seed)
        learners = self._learners(data.task, self.estimator_list)
        resampling = choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=self.cv_instance_threshold,
            rate_threshold=self.cv_rate_threshold,
        )
        runner = BudgetedRunner(
            data, learners, metric, time_budget, resampling, seed=seed,
            max_trials=self.max_trials,
        )
        if self.startup_overhead:
            # simulate meta-learning startup (cloud/meta-feature latency)
            import time as _t

            _t.sleep(min(self.startup_overhead, time_budget * 0.5))
        samplers = {
            name: TPESampler(spec.space_fn(data.n, data.task), rng)
            for name, spec in learners.items()
        }
        names = list(learners)
        # 1) warm start from the portfolio
        for lname, cfg in (_portfolio(data.task) if self.use_portfolio else []):
            if runner.out_of_budget:
                break
            if lname not in learners:
                continue
            full_cfg = {**samplers[lname].space.init_config(), **cfg}
            err = runner.run_trial(lname, full_cfg)
            samplers[lname].observe(full_cfg, err)
        # 2) BO: pick the learner with the best observed error so far
        #    (epsilon-greedy), propose via its TPE model
        best_by_learner: dict[str, float] = {}
        for t in runner.trials:
            best_by_learner[t.learner] = min(
                best_by_learner.get(t.learner, np.inf), t.error
            )
        while not runner.out_of_budget:
            if rng.random() < 0.2 or not best_by_learner:
                lname = names[int(rng.integers(0, len(names)))]
            else:
                lname = min(best_by_learner, key=best_by_learner.get)
            cfg = samplers[lname].propose()
            err = runner.run_trial(lname, cfg)
            samplers[lname].observe(cfg, err)
            best_by_learner[lname] = min(best_by_learner.get(lname, np.inf), err)
        return runner.result()


class CloudAutoMLLike(AutoSklearnLike):
    """The commercial-service stand-in: BO without a portfolio plus a fixed
    start-up overhead (the paper notes cloud-automl does not return within
    2 minutes at a 1-minute budget — the overhead models that latency)."""

    name = "Cloud-automl"
    use_portfolio = False

    def __init__(self, startup_overhead: float = 0.5, **kw) -> None:
        super().__init__(**kw)
        self.startup_overhead = float(startup_overhead)
