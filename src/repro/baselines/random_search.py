"""Random / grid sampling baselines (and helpers for H2O-like)."""

from __future__ import annotations

import numpy as np

from ..core.controller import SearchResult
from ..core.resampling import choose_resampling
from ..core.space import SearchSpace
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem, BudgetedRunner

__all__ = ["RandomSearch", "grid_sample"]


def grid_sample(space: SearchSpace, rng: np.random.Generator,
                grid_points: int = 7, middle: bool = False) -> dict:
    """One configuration from a discretised grid of the unit cube.

    ``middle=True`` returns the grid's central point (a "default" config).
    """
    if grid_points < 2:
        raise ValueError("grid_points must be >= 2")
    levels = np.linspace(0.0, 1.0, grid_points)
    if middle:
        u = np.full(space.dim, levels[grid_points // 2])
    else:
        u = levels[rng.integers(0, grid_points, size=space.dim)]
    return space.from_unit(u)


class RandomSearch(AutoMLSystem):
    """Uniform random search over the joint learner/config space."""

    name = "RandomSearch"

    def __init__(self, estimator_list: list[str] | None = None,
                 cv_instance_threshold: int = 100_000,
                 cv_rate_threshold: float = 10e6 / 3600.0,
                 max_trials: int | None = None) -> None:
        self.estimator_list = estimator_list
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.max_trials = max_trials

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run uniform random search within the budget."""
        rng = np.random.default_rng(seed)
        learners = self._learners(data.task, self.estimator_list)
        spaces = {n: s.space_fn(data.n, data.task) for n, s in learners.items()}
        resampling = choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=self.cv_instance_threshold,
            rate_threshold=self.cv_rate_threshold,
        )
        runner = BudgetedRunner(
            data, learners, metric, time_budget, resampling, seed=seed,
            max_trials=self.max_trials,
        )
        names = list(learners)
        while not runner.out_of_budget:
            lname = names[int(rng.integers(0, len(names)))]
            runner.run_trial(lname, spaces[lname].sample(rng))
        return runner.result()
