"""Comparator AutoML systems + FLAML ablations (DESIGN.md §3.5)."""

from .autosklearn_like import AutoSklearnLike, CloudAutoMLLike
from .base import AutoMLSystem, BudgetedRunner
from .bohb import BOHB
from .flaml_system import ABLATIONS, FLAMLSystem, make_ablation
from .gp_bo import GPEIBaseline, GPRegressor
from .h2o_like import H2OLike
from .random_search import RandomSearch, grid_sample
from .tpe import TPESampler
from .tpot_like import TPOTLike

__all__ = [
    "ABLATIONS",
    "AutoMLSystem",
    "AutoSklearnLike",
    "BOHB",
    "BudgetedRunner",
    "CloudAutoMLLike",
    "FLAMLSystem",
    "GPEIBaseline",
    "GPRegressor",
    "H2OLike",
    "RandomSearch",
    "TPESampler",
    "TPOTLike",
    "grid_sample",
    "make_ablation",
]
