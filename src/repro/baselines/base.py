"""Shared machinery for the comparator AutoML systems.

Every baseline implements :meth:`AutoMLSystem.search`, producing the same
:class:`~repro.core.controller.SearchResult` (with per-trial
:class:`TrialRecord` rows) that FLAML's controller produces, so the
benchmark harness can slice best-so-far curves out of any system
uniformly.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.controller import SearchResult, TrialRecord
from ..core.evaluate import evaluate_config
from ..core.registry import DEFAULT_LEARNERS, LearnerSpec, all_learners
from ..data.dataset import Dataset
from ..metrics.registry import Metric

__all__ = ["AutoMLSystem", "BudgetedRunner"]


class AutoMLSystem:
    """Base class: a named system that searches within a time budget."""

    name = "base"

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run the system's search within the budget; returns a SearchResult."""
        raise NotImplementedError

    def _learners(self, task: str, estimator_list=None) -> dict[str, LearnerSpec]:
        names = estimator_list or [
            n for n, s in DEFAULT_LEARNERS.items() if s.supports(task)
        ]
        available = all_learners()
        return {n: available[n] for n in names}


class BudgetedRunner:
    """Records trials against a wall-clock budget (shared by baselines)."""

    def __init__(
        self,
        data: Dataset,
        learners: dict[str, LearnerSpec],
        metric: Metric,
        time_budget: float,
        resampling: str,
        seed: int = 0,
        n_splits: int = 5,
        holdout_ratio: float = 0.1,
        max_trials: int | None = None,
    ) -> None:
        self.data = data
        self.learners = learners
        self.metric = metric
        self.time_budget = float(time_budget)
        self.resampling = resampling
        self.seed = seed
        self.n_splits = n_splits
        self.holdout_ratio = holdout_ratio
        self.max_trials = max_trials
        self._labels = np.unique(data.y) if data.is_classification else None
        self._start = time.perf_counter()
        self.trials: list[TrialRecord] = []
        self.best_error = np.inf
        self.best = (None, None, data.n)

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the runner started."""
        return time.perf_counter() - self._start

    @property
    def out_of_budget(self) -> bool:
        """True once the time budget or trial cap is exhausted."""
        if self.max_trials is not None and len(self.trials) >= self.max_trials:
            return True
        return self.elapsed >= self.time_budget

    def run_trial(self, learner: str, config: dict,
                  sample_size: int | None = None) -> float:
        """Evaluate one configuration, append a TrialRecord, return error."""
        s = sample_size or self.data.n
        remaining = max(self.time_budget - self.elapsed, 0.01)
        outcome = evaluate_config(
            self.data,
            self.learners[learner].estimator_cls(self.data.task),
            config,
            sample_size=s,
            resampling=self.resampling,
            metric=self.metric,
            n_splits=self.n_splits,
            holdout_ratio=self.holdout_ratio,
            seed=self.seed,
            train_time_limit=remaining,
            labels=self._labels,
        )
        improved = outcome.error < self.best_error
        if improved:
            self.best_error = outcome.error
            self.best = (learner, dict(config), s)
        self.trials.append(
            TrialRecord(
                iteration=len(self.trials) + 1,
                automl_time=self.elapsed,
                learner=learner,
                config=dict(config),
                sample_size=s,
                resampling=self.resampling,
                error=outcome.error,
                cost=outcome.cost,
                kind="search",
                improved_global=improved,
            )
        )
        return outcome.error

    def result(self) -> SearchResult:
        """Package the trials recorded so far into a SearchResult."""
        return SearchResult(
            best_learner=self.best[0],
            best_config=self.best[1],
            best_sample_size=self.best[2],
            best_error=float(self.best_error),
            resampling=self.resampling,
            trials=self.trials,
            wall_time=self.elapsed,
        )
