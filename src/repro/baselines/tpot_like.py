"""TPOT-like baseline: genetic programming over learner/hyperparameter
genomes (related work §2).

A genome is (learner, unit-cube hyperparameter vector).  Each generation
evaluates a population on the full training data, keeps the fittest via
tournament selection, and produces offspring by gaussian mutation and
uniform crossover (within the same learner; cross-learner crossover picks
one parent's learner).  This reproduces TPOT's defining cost profile: a
full population evaluated per generation, with no notion of trial cost.
"""

from __future__ import annotations

import numpy as np

from ..core.controller import SearchResult
from ..core.resampling import choose_resampling
from ..data.dataset import Dataset
from ..metrics.registry import Metric
from .base import AutoMLSystem, BudgetedRunner

__all__ = ["TPOTLike"]


class TPOTLike(AutoMLSystem):
    """Genetic-programming search over the joint learner/config space."""

    name = "TPOT"

    def __init__(
        self,
        population_size: int = 12,
        tournament_k: int = 3,
        mutation_sigma: float = 0.15,
        crossover_rate: float = 0.4,
        estimator_list: list[str] | None = None,
        cv_instance_threshold: int = 100_000,
        cv_rate_threshold: float = 10e6 / 3600.0,
        max_trials: int | None = None,
    ) -> None:
        self.population_size = int(population_size)
        self.tournament_k = int(tournament_k)
        self.mutation_sigma = float(mutation_sigma)
        self.crossover_rate = float(crossover_rate)
        self.estimator_list = estimator_list
        self.cv_instance_threshold = cv_instance_threshold
        self.cv_rate_threshold = cv_rate_threshold
        self.max_trials = max_trials

    def search(self, data: Dataset, metric: Metric, time_budget: float,
               seed: int = 0) -> SearchResult:
        """Run the genetic-programming search within the budget."""
        rng = np.random.default_rng(seed)
        learners = self._learners(data.task, self.estimator_list)
        spaces = {n: s.space_fn(data.n, data.task) for n, s in learners.items()}
        resampling = choose_resampling(
            data.n, data.d, time_budget,
            instance_threshold=self.cv_instance_threshold,
            rate_threshold=self.cv_rate_threshold,
        )
        runner = BudgetedRunner(
            data, learners, metric, time_budget, resampling, seed=seed,
            max_trials=self.max_trials,
        )
        names = list(learners)

        def random_genome():
            lname = names[int(rng.integers(0, len(names)))]
            return lname, spaces[lname].to_unit(spaces[lname].sample(rng))

        def evaluate(genome):
            lname, u = genome
            cfg = spaces[lname].from_unit(u)
            return runner.run_trial(lname, cfg)

        # generation 0
        population = [random_genome() for _ in range(self.population_size)]
        fitness = []
        for g in population:
            if runner.out_of_budget:
                break
            fitness.append(evaluate(g))
        while not runner.out_of_budget and fitness:
            # tournament selection
            def select():
                idx = rng.integers(0, len(fitness), size=min(self.tournament_k, len(fitness)))
                return population[int(idx[np.argmin([fitness[i] for i in idx])])]

            offspring = []
            while len(offspring) < self.population_size:
                p1 = select()
                if rng.random() < self.crossover_rate:
                    p2 = select()
                    lname = p1[0] if rng.random() < 0.5 else p2[0]
                    if p1[0] == p2[0]:
                        mask = rng.random(p1[1].size) < 0.5
                        u = np.where(mask, p1[1], p2[1])
                    else:
                        u = (p1 if lname == p1[0] else p2)[1].copy()
                else:
                    lname, u = p1[0], p1[1].copy()
                # gaussian mutation in the unit cube
                u = np.clip(
                    u + rng.standard_normal(u.size) * self.mutation_sigma, 0, 1
                )
                if rng.random() < 0.1:  # learner mutation
                    lname = names[int(rng.integers(0, len(names)))]
                    u = spaces[lname].to_unit(spaces[lname].sample(rng))
                offspring.append((lname, u))
            new_fit = []
            for g in offspring:
                if runner.out_of_budget:
                    break
                new_fit.append(evaluate(g))
            # elitist merge
            merged = list(zip(fitness, population)) + list(
                zip(new_fit, offspring[: len(new_fit)])
            )
            merged.sort(key=lambda t: t[0])
            merged = merged[: self.population_size]
            fitness = [f for f, _ in merged]
            population = [g for _, g in merged]
        return runner.result()
