"""repro — reproduction of FLAML: A Fast and Lightweight AutoML Library
(Wang, Wu, Weimer, Zhu; MLSys 2021).

Public entry point::

    from repro import AutoML
    automl = AutoML()
    automl.fit(X_train, y_train, task="classification", time_budget=60)
    prediction = automl.predict(X_test)

Subpackages: ``core`` (the AutoML layer), ``exec`` (pluggable
trial-execution engine: serial/thread/process backends + trial cache),
``serve`` (deployment layer: pipeline artifacts, versioned model
registry, micro-batching HTTP prediction server), ``learners`` (the ML
layer), ``metrics``, ``data`` (benchmark suite + selectivity and
time-series substrates), ``baselines`` (comparator AutoML systems),
``bench`` (experiment harness).

Beyond tabular classification/regression, ``task="forecast"`` runs the
same economical search on univariate time series: lag featurization is
searched jointly with the learner, trials are scored by leakage-proof
rolling-origin temporal CV, and ``predict(horizon=H)`` returns an
H-step forecast.
"""

from .core.automl import AutoML
from .core.space import SearchSpace
from .native import native_available, native_enabled, set_native_enabled

__version__ = "0.1.0"
__all__ = [
    "AutoML",
    "SearchSpace",
    "__version__",
    "native_available",
    "native_enabled",
    "set_native_enabled",
]
