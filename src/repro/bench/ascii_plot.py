"""ASCII scatter/line plots for terminal-rendered figures.

The paper's figures are log-log scatter/line plots; this module renders
the same series as fixed-size character grids so the bench targets can
show an actual *picture* in a terminal and in the saved result files,
without a plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_scatter", "ascii_multi_series"]


def _log_grid(values: np.ndarray, n_cells: int, log: bool) -> np.ndarray:
    v = np.asarray(values, dtype=np.float64)
    if log:
        v = np.log10(np.maximum(v, 1e-12))
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return np.zeros(v.size, dtype=np.int64)
    cells = ((v - lo) / (hi - lo) * (n_cells - 1)).astype(np.int64)
    return np.clip(cells, 0, n_cells - 1)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    marker: str = "o",
    width: int = 60,
    height: int = 16,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    grid: list[list[str]] | None = None,
) -> str:
    """Render one (x, y) series as an ASCII scatter plot.

    Pass the returned grid of a previous call via ``grid`` to overlay
    multiple series (use distinct markers).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return f"{title}\n(no data)"
    cx = _log_grid(x, width, logx)
    cy = _log_grid(y, height, logy)
    cells = grid if grid is not None else [[" "] * width for _ in range(height)]
    for i, j in zip(cx, cy):
        cells[height - 1 - j][i] = marker
    lines = []
    if title:
        lines.append(title)
    for row in cells:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lo, hi = float(x.min()), float(x.max())
    lines.append(f" {xlabel}: [{lo:.3g} .. {hi:.3g}]"
                 + (" (log)" if logx else ""))
    if ylabel:
        lo, hi = float(y.min()), float(y.max())
        lines.append(f" {ylabel}: [{lo:.3g} .. {hi:.3g}]"
                     + (" (log)" if logy else ""))
    return "\n".join(lines)


def ascii_multi_series(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 60,
    height: int = 16,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Overlay several named (x, y) series with automatic markers.

    All series share one set of axes (joint min/max).
    """
    markers = "o*x+#@%&"
    names = list(series)
    if not names:
        return f"{title}\n(no data)"
    all_x = np.concatenate([np.asarray(series[n][0], dtype=np.float64)
                            for n in names if len(series[n][0])])
    all_y = np.concatenate([np.asarray(series[n][1], dtype=np.float64)
                            for n in names if len(series[n][1])])
    if all_x.size == 0:
        return f"{title}\n(no data)"
    cx_all = _log_grid(all_x, width, logx)
    cy_all = _log_grid(all_y, height, logy)
    cells = [[" "] * width for _ in range(height)]
    pos = 0
    legend = []
    for k, name in enumerate(names):
        n_pts = len(series[name][0])
        m = markers[k % len(markers)]
        legend.append(f"{m}={name}")
        for i, j in zip(cx_all[pos : pos + n_pts], cy_all[pos : pos + n_pts]):
            cells[height - 1 - j][i] = m
        pos += n_pts
    lines = []
    if title:
        lines.append(title)
    lines.append("legend: " + "  ".join(legend))
    for row in cells:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f" {xlabel}: [{all_x.min():.3g} .. {all_x.max():.3g}]"
                 + (" (log)" if logx else ""))
    lines.append(f" {ylabel}: [{all_y.min():.3g} .. {all_y.max():.3g}]"
                 + (" (log)" if logy else ""))
    return "\n".join(lines)
