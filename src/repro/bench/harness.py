"""Suite runner: execute AutoML systems over datasets, budgets and folds,
and score the resulting models the way the benchmark does (§5).

Scaling note (DESIGN.md §2): the suite datasets are ~50x smaller (rows capped to the 1k-8k range) than the
originals and budgets are seconds rather than minutes, so the resampling
thresholds default to scaled values (2 500 instances instead of 100 000;
the rate threshold keeps the paper's 10M/hour because both numerator and
denominator shrink together).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    BOHB,
    AutoMLSystem,
    AutoSklearnLike,
    CloudAutoMLLike,
    FLAMLSystem,
    H2OLike,
    TPOTLike,
)
from ..core.controller import SearchResult
from ..core.evaluate import _make_estimator
from ..core.registry import DEFAULT_LEARNERS
from ..data.dataset import Dataset
from ..data.suite import SUITE
from ..metrics.registry import get_metric
from .scaled_score import (
    constant_predictor_score,
    raw_score,
    rf_reference_score,
    scale_score,
)

__all__ = ["RunRecord", "ComparisonHarness", "default_systems", "SCALED_THRESHOLDS"]

#: resampling thresholds matched to the suite's ~50x downscaling
SCALED_THRESHOLDS = dict(
    cv_instance_threshold=2_500,
    cv_rate_threshold=10e6 / 3600.0,
)


def default_systems(
    flaml_init_sample: int = 250, include: tuple[str, ...] | None = None,
    n_workers: int = 1, backend: str | None = None,
) -> dict[str, AutoMLSystem]:
    """The paper's §5.1 roster, configured for the scaled suite.

    ``n_workers``/``backend`` configure FLAML's trial-execution engine
    (the baselines stay sequential — they have no parallel story to
    reproduce), e.g. ``n_workers=4, backend="process"`` benchmarks the
    multi-core search.
    """
    roster: dict[str, AutoMLSystem] = {
        "FLAML": FLAMLSystem(init_sample_size=flaml_init_sample,
                             n_workers=n_workers, backend=backend,
                             **SCALED_THRESHOLDS),
        "Auto-sklearn": AutoSklearnLike(**SCALED_THRESHOLDS),
        "Cloud-automl": CloudAutoMLLike(startup_overhead=0.5, **SCALED_THRESHOLDS),
        "HpBandSter": BOHB(min_sample=flaml_init_sample, **SCALED_THRESHOLDS),
        "H2OAutoML": H2OLike(**SCALED_THRESHOLDS),
        "TPOT": TPOTLike(**SCALED_THRESHOLDS),
    }
    if include is not None:
        roster = {k: v for k, v in roster.items() if k in include}
    return roster


@dataclass
class RunRecord:
    """One (dataset, system, budget, fold) experiment outcome."""

    dataset: str
    task: str
    system: str
    budget: float
    fold: int
    raw_score: float
    scaled_score: float
    best_error: float
    n_trials: int
    wall_time: float
    result: SearchResult | None = field(default=None, repr=False)


def fit_final_model(train: Dataset, result: SearchResult, seed: int = 0,
                    time_limit: float | None = None):
    """Retrain a SearchResult's best configuration on the full train fold."""
    if result.best_learner is None:
        return None
    spec = DEFAULT_LEARNERS[result.best_learner]
    model = _make_estimator(
        spec.estimator_cls(train.task), result.best_config, seed, time_limit
    )
    model.fit(train.X, train.y)
    return model


class ComparisonHarness:
    """Run many systems over suite datasets and produce scored records."""

    def __init__(
        self,
        systems: dict[str, AutoMLSystem] | None = None,
        budgets: tuple[float, ...] = (1.0, 3.0),
        n_folds: int = 1,
        seed: int = 0,
        rf_time_limit: float = 15.0,
        keep_results: bool = False,
    ) -> None:
        self.systems = systems or default_systems()
        self.budgets = tuple(budgets)
        self.n_folds = int(n_folds)
        self.seed = int(seed)
        self.rf_time_limit = float(rf_time_limit)
        self.keep_results = bool(keep_results)

    # ------------------------------------------------------------------
    def run_dataset(self, name: str, dataset: Dataset | None = None) -> list[RunRecord]:
        """All (system, budget, fold) runs for one dataset."""
        data = dataset if dataset is not None else SUITE[name].load()
        metric = get_metric("auto", task=data.task)
        records: list[RunRecord] = []
        # 10 outer folds like the benchmark's OpenML splits (train = 90%);
        # quick mode just evaluates the first fold(s)
        folds = data.outer_folds(max(self.n_folds, 10), seed=self.seed)[: self.n_folds]
        for fold_id, (train, test) in enumerate(folds):
            const = constant_predictor_score(train, test)
            rf = rf_reference_score(
                train, test, seed=self.seed, train_time_limit=self.rf_time_limit
            )
            train_sh = train.shuffled(self.seed)
            for budget in self.budgets:
                for sys_name, system in self.systems.items():
                    t0 = time.perf_counter()
                    # per-system seed offset (stable across processes):
                    # otherwise systems that start with uniform random
                    # sampling draw identical configs
                    sys_seed = self.seed + fold_id + (
                        zlib.crc32(sys_name.encode()) & 0xFFFF
                    )
                    result = system.search(
                        train_sh, metric, time_budget=budget, seed=sys_seed,
                    )
                    model = fit_final_model(
                        train_sh, result, seed=self.seed,
                        time_limit=max(budget, 1.0),
                    )
                    if model is None:
                        raw = const
                    else:
                        raw = raw_score(train, test, model)
                    records.append(
                        RunRecord(
                            dataset=name,
                            task=data.task,
                            system=sys_name,
                            budget=budget,
                            fold=fold_id,
                            raw_score=raw,
                            scaled_score=scale_score(raw, const, rf),
                            best_error=result.best_error,
                            n_trials=result.n_trials,
                            wall_time=time.perf_counter() - t0,
                            result=result if self.keep_results else None,
                        )
                    )
        return records

    def run(self, names: list[str]) -> list[RunRecord]:
        """Run every configured system over the named datasets."""
        out: list[RunRecord] = []
        for name in names:
            out.extend(self.run_dataset(name))
        return out


def score_table(records: list[RunRecord]) -> dict[float, dict[str, dict[str, float]]]:
    """records -> {budget: {dataset: {system: mean scaled score}}}."""
    table: dict[float, dict[str, dict[str, list[float]]]] = {}
    for r in records:
        table.setdefault(r.budget, {}).setdefault(r.dataset, {}).setdefault(
            r.system, []
        ).append(r.scaled_score)
    return {
        b: {d: {s: float(np.mean(v)) for s, v in sys.items()} for d, sys in ds.items()}
        for b, ds in table.items()
    }
