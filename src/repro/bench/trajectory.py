"""Trajectory analysis: best-so-far curves and regret from trial logs.

Figures 1, 4 and 7 are all views over the per-trial records produced by
the systems' SearchResults; this module computes those views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.controller import TrialRecord

__all__ = [
    "anytime_average_error",
    "best_so_far",
    "error_at_time",
    "regret_series",
    "per_learner_best",
    "time_to_error",
    "TrajectoryPoint",
]


@dataclass(frozen=True)
class TrajectoryPoint:
    """One trial projected into Figure-1 coordinates."""

    automl_time: float
    cost: float
    error: float
    learner: str
    sample_size: int


def _finite(trials: list[TrialRecord]) -> list[TrialRecord]:
    return [t for t in trials if np.isfinite(t.error)]


def best_so_far(trials: list[TrialRecord]) -> list[tuple[float, float]]:
    """(automl_time, best_error_so_far) steps, one per trial."""
    out = []
    best = np.inf
    for t in trials:
        if np.isfinite(t.error):
            best = min(best, t.error)
        out.append((t.automl_time, best))
    return out


def error_at_time(trials: list[TrialRecord], when: float) -> float:
    """Best error among trials that finished by ``when`` (inf if none)."""
    best = np.inf
    for t in trials:
        if t.automl_time <= when and np.isfinite(t.error):
            best = min(best, t.error)
    return best


def regret_series(
    trials: list[TrialRecord], best_error: float | None = None
) -> list[TrajectoryPoint]:
    """Per-trial points with error replaced by regret = error - best.

    ``best_error`` defaults to the lowest error in the log (the paper's
    "model auc regret = best auc - model auc" with the run's own best as
    reference).
    """
    ts = _finite(trials)
    if not ts:
        return []
    ref = min(t.error for t in ts) if best_error is None else best_error
    return [
        TrajectoryPoint(
            automl_time=t.automl_time,
            cost=t.cost,
            error=max(t.error - ref, 0.0),
            learner=t.learner,
            sample_size=t.sample_size,
        )
        for t in ts
    ]


def time_to_error(trials: list[TrialRecord], target: float) -> float:
    """Earliest automl_time at which best-so-far error reached ``target``
    (inf if it never did).

    The anytime summary the paper's budget-crossover comparisons imply:
    "how long does system A need to match what system B had at time t".
    """
    best = np.inf
    for t in trials:
        if np.isfinite(t.error):
            best = min(best, t.error)
            if best <= target:
                return float(t.automl_time)
    return float("inf")


def anytime_average_error(trials: list[TrialRecord], horizon: float) -> float:
    """Time-average of the best-so-far error over [0, horizon].

    A single scalar for "how good was the system *throughout* the run",
    rather than only at the end — the integral of the step function in
    :func:`best_so_far`, with the pre-first-model stretch charged at the
    first model's error (a system that produces nothing for half the
    budget is penalised accordingly).  Lower is better.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    steps = [(t, e) for t, e in best_so_far(trials)
             if np.isfinite(e) and t <= horizon]
    if not steps:
        return float("inf")
    area = steps[0][1] * steps[0][0]  # charge the wait for the first model
    for (t0, e0), (t1, _) in zip(steps, steps[1:]):
        area += e0 * (t1 - t0)
    area += steps[-1][1] * (horizon - steps[-1][0])
    return float(area / horizon)


def per_learner_best(trials: list[TrialRecord]) -> dict[str, list[tuple[float, float]]]:
    """Figure 4's top panel: per-learner (time, best-error-so-far) curves."""
    out: dict[str, list[tuple[float, float]]] = {}
    best: dict[str, float] = {}
    for t in trials:
        if not np.isfinite(t.error):
            continue
        b = min(best.get(t.learner, np.inf), t.error)
        best[t.learner] = b
        out.setdefault(t.learner, []).append((t.automl_time, b))
    return out
