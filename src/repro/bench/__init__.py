"""Benchmark harness: trajectory analysis, scaled scoring, suite runner,
and text renderers for every table/figure in the paper's evaluation."""

from .harness import (
    SCALED_THRESHOLDS,
    ComparisonHarness,
    RunRecord,
    default_systems,
    fit_final_model,
    score_table,
)
from .reporting import (
    format_ablation_curves,
    format_boxplot_summary,
    format_budget_table,
    format_qerror_table,
    format_radar_table,
    format_trial_table,
    summarize_score_differences,
)
from .scaled_score import (
    constant_predictor_score,
    raw_score,
    rf_reference_score,
    scale_score,
)
from .trajectory import (
    TrajectoryPoint,
    anytime_average_error,
    best_so_far,
    error_at_time,
    per_learner_best,
    regret_series,
    time_to_error,
)

__all__ = [
    "ComparisonHarness",
    "RunRecord",
    "SCALED_THRESHOLDS",
    "TrajectoryPoint",
    "anytime_average_error",
    "best_so_far",
    "constant_predictor_score",
    "default_systems",
    "error_at_time",
    "fit_final_model",
    "format_ablation_curves",
    "format_boxplot_summary",
    "format_budget_table",
    "format_qerror_table",
    "format_radar_table",
    "format_trial_table",
    "per_learner_best",
    "raw_score",
    "regret_series",
    "rf_reference_score",
    "scale_score",
    "score_table",
    "summarize_score_differences",
    "time_to_error",
]
