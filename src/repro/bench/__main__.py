"""``python -m repro.bench`` — see :mod:`repro.bench.cli`.

The guard matters: tools that walk/import every module in the package
(doc generators, coverage) must not trigger a benchmark run.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
