"""Text renderers for the paper's tables and figures.

Every experiment's bench target ends by printing one of these: the same
rows/series the paper reports, as plain text (this reproduction has no
plotting dependency).
"""

from __future__ import annotations

import numpy as np

from ..core.controller import SearchResult, TrialRecord
from .harness import RunRecord, score_table

__all__ = [
    "format_trial_table",
    "format_radar_table",
    "format_boxplot_summary",
    "format_budget_table",
    "format_qerror_table",
    "format_ablation_curves",
    "summarize_score_differences",
]


def _fmt_config(config: dict, max_items: int = 4) -> str:
    items = []
    for k, v in list(config.items())[:max_items]:
        if isinstance(v, float):
            items.append(f"{k}: {v:.3g}")
        else:
            items.append(f"{k}: {v}")
    return ", ".join(items) + ("..." if len(config) > max_items else "")


def format_trial_table(result: SearchResult, system: str, max_rows: int = 30) -> str:
    """Table 3: per-trial listing (iter, time, learner, config, error, cost)."""
    lines = [
        f"--- {system} trial log ---",
        f"{'Iter':>4} {'Time(s)':>8} {'Learner':<11} {'Sample':>6} "
        f"{'Error':>8} {'Cost(s)':>8}  Config",
    ]
    for t in result.trials[:max_rows]:
        err = f"{t.error:.4f}" if np.isfinite(t.error) else "fail"
        lines.append(
            f"{t.iteration:>4} {t.automl_time:>8.2f} {t.learner:<11} "
            f"{t.sample_size:>6} {err:>8} {t.cost:>8.3f}  {_fmt_config(t.config)}"
        )
    if len(result.trials) > max_rows:
        lines.append(f"... ({len(result.trials) - max_rows} more trials)")
    return "\n".join(lines)


def format_radar_table(records: list[RunRecord], task: str | None = None) -> str:
    """Figure 5 as a table: scaled scores per dataset x system per budget."""
    table = score_table([r for r in records if task is None or r.task == task])
    lines = []
    for budget in sorted(table):
        datasets = table[budget]
        systems = sorted({s for d in datasets.values() for s in d})
        header = f"{'dataset':<22}" + "".join(f"{s:>14}" for s in systems)
        lines.append(f"=== budget {budget:g}s"
                     + (f" ({task})" if task else "") + " ===")
        lines.append(header)
        for dname in datasets:
            row = f"{dname[:21]:<22}"
            best = max(datasets[dname].values())
            for s in systems:
                v = datasets[dname].get(s, float("nan"))
                mark = "*" if v == best else " "
                row += f"{v:>13.3f}{mark}"
            lines.append(row)
        lines.append("(* = best on the dataset; constant predictor=0, tuned RF=1)")
    return "\n".join(lines)


def summarize_score_differences(
    records: list[RunRecord],
    reference: str = "FLAML",
    ref_budget: float | None = None,
    other_budget: float | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 6's box-plot statistics: distribution of
    (reference score - system score) per system, optionally comparing the
    reference at a *smaller* budget to the others at a larger one."""
    table = score_table(records)
    budgets = sorted(table)
    rb = ref_budget if ref_budget is not None else budgets[0]
    ob = other_budget if other_budget is not None else rb
    out: dict[str, dict[str, float]] = {}
    systems = sorted({r.system for r in records if r.system != reference})
    for s in systems:
        diffs = []
        for dname, scores in table[rb].items():
            if reference in scores and s in table.get(ob, {}).get(dname, {}):
                diffs.append(scores[reference] - table[ob][dname][s])
        if not diffs:
            continue
        arr = np.asarray(diffs)
        out[s] = {
            "median": float(np.median(arr)),
            "q1": float(np.percentile(arr, 25)),
            "q3": float(np.percentile(arr, 75)),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "frac_positive": float((arr > -1e-12).mean()),
            "n": int(arr.size),
        }
    return out


def format_boxplot_summary(stats: dict[str, dict[str, float]], title: str) -> str:
    """Render Figure-6-style summary statistics as text."""
    lines = [f"=== {title} (positive = FLAML better) ==="]
    lines.append(
        f"{'system':<14}{'median':>9}{'q1':>9}{'q3':>9}{'min':>9}{'max':>9}"
        f"{'%>=0':>8}{'n':>5}"
    )
    for s, st in stats.items():
        lines.append(
            f"{s:<14}{st['median']:>9.3f}{st['q1']:>9.3f}{st['q3']:>9.3f}"
            f"{st['min']:>9.3f}{st['max']:>9.3f}{100 * st['frac_positive']:>7.0f}%"
            f"{st['n']:>5}"
        )
    return "\n".join(lines)


def format_budget_table(
    records: list[RunRecord], pairs: list[tuple[float, float]],
    reference: str = "FLAML", tolerance: float = 0.001,
) -> str:
    """Table 9: % of tasks where the reference with a smaller budget is
    better than or equal to each baseline with a larger budget."""
    table = score_table(records)
    systems = sorted({r.system for r in records if r.system != reference})
    lines = ["=== Table 9: % tasks FLAML better-or-equal with smaller budget ==="]
    header = f"{'FLAML vs baseline':<22}" + "".join(
        f"{f'{a:g}s vs {b:g}s':>14}" for a, b in pairs
    )
    lines.append(header)
    for s in systems:
        row = f"{reference} vs {s:<11}"
        for small, large in pairs:
            wins = total = 0
            for dname, scores in table.get(small, {}).items():
                other = table.get(large, {}).get(dname, {})
                if reference in scores and s in other:
                    total += 1
                    if scores[reference] >= other[s] - tolerance:
                        wins += 1
            row += f"{100 * wins / max(total, 1):>13.0f}%"
        lines.append(row)
    return "\n".join(lines)


def format_qerror_table(results: dict[str, dict[str, float]]) -> str:
    """Table 4: 95th-percentile q-error per selectivity dataset x method."""
    methods = sorted({m for row in results.values() for m in row})
    # present FLAML first, Manual last, like the paper
    order = [m for m in ("FLAML", "Auto-sk.", "TPOT") if m in methods]
    order += [m for m in methods if m not in order and m != "Manual"]
    if "Manual" in methods:
        order.append("Manual")
    lines = ["=== Table 4: 95th-percentile q-error (lower is better) ==="]
    lines.append(f"{'Dataset':<12}" + "".join(f"{m:>10}" for m in order))
    for dname, row in results.items():
        line = f"{dname:<12}"
        for m in order:
            v = row.get(m)
            line += f"{v:>10.2f}" if v is not None else f"{'N/A':>10}"
        lines.append(line)
    return "\n".join(lines)


def format_ablation_curves(
    curves: dict[str, list[tuple[float, float]]], dataset: str, metric_name: str
) -> str:
    """Figure 7 as text: best-so-far error at a grid of time points."""
    grid = sorted({t for curve in curves.values() for t, _ in curve})
    if not grid:
        return f"(no trials for {dataset})"
    points = np.geomspace(max(grid[0], 1e-3), grid[-1], num=8)
    lines = [f"=== {dataset}: {metric_name} best-so-far vs wall clock ==="]
    lines.append(f"{'time(s)':>9}" + "".join(f"{n:>12}" for n in curves))
    for p in points:
        row = f"{p:>9.2f}"
        for name, curve in curves.items():
            best = np.inf
            for t, e in curve:
                if t <= p:
                    best = min(best, e)
            row += f"{best:>12.4f}" if np.isfinite(best) else f"{'-':>12}"
        lines.append(row)
    return "\n".join(lines)
