"""Command-line entry point: run suite comparisons without pytest.

Examples::

    python -m repro.bench --datasets phoneme adult --budgets 1 3
    python -m repro.bench --task regression --systems FLAML HpBandSter
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys

from ..data.suite import SUITE, suite_names
from .harness import ComparisonHarness, default_systems
from .reporting import format_radar_table


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro.bench``."""
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run AutoML systems over the benchmark suite and print "
        "scaled scores (constant predictor=0, tuned random forest=1).",
    )
    p.add_argument("--datasets", nargs="*", default=None,
                   help="suite dataset names (default: 3 per task type)")
    p.add_argument("--task", choices=["binary", "multiclass", "regression"],
                   default=None, help="restrict to one task type")
    p.add_argument("--systems", nargs="*", default=None,
                   help="subset of: " + " ".join(default_systems()))
    p.add_argument("--budgets", nargs="*", type=float, default=[1.0, 3.0],
                   help="time budgets in seconds (default: 1 3)")
    p.add_argument("--folds", type=int, default=1,
                   help="outer folds to average (default 1, paper uses 10)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--n-workers", type=int, default=1,
                   help="concurrent trials for FLAML's executor (default 1)")
    p.add_argument("--backend", default=None,
                   choices=["serial", "thread", "process", "virtual"],
                   help="FLAML trial-execution backend (default: serial, "
                        "or thread when --n-workers > 1)")
    p.add_argument("--list", action="store_true",
                   help="list suite datasets and exit")
    p.add_argument("--profile", action="store_true",
                   help="run the suite under cProfile and print the "
                        "top-15 cumulative-time hotspots (perf PRs start "
                        "from this table)")
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name in suite_names(args.task):
            s = SUITE[name]
            print(f"{name:<24} {s.task:<11} n={s.n:<6} d={s.d:<3} "
                  f"(paper: {s.orig_n} x {s.orig_d})")
        return 0
    if args.datasets:
        unknown = [d for d in args.datasets if d not in SUITE]
        if unknown:
            print(f"unknown datasets: {unknown}", file=sys.stderr)
            return 2
        names = args.datasets
    elif args.task:
        all_names = suite_names(args.task)
        names = [all_names[0], all_names[len(all_names) // 2], all_names[-1]]
    else:
        names = ["blood-transfusion", "phoneme", "adult",
                 "vehicle", "segment", "connect-4",
                 "houses", "fried", "bng_pbc"]
    systems = default_systems(
        include=tuple(args.systems) if args.systems else None,
        n_workers=args.n_workers, backend=args.backend,
    )
    if not systems:
        print("no matching systems", file=sys.stderr)
        return 2
    harness = ComparisonHarness(
        systems=systems, budgets=tuple(args.budgets), n_folds=args.folds,
        seed=args.seed,
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    records = harness.run(names)
    if profiler is not None:
        profiler.disable()
    print(format_radar_table(records, task=args.task))
    if profiler is not None:
        import pstats

        print("\n== top-15 hotspots (cumulative time) ==")
        pstats.Stats(profiler).strip_dirs().sort_stats(
            "cumulative"
        ).print_stats(15)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
