"""The AutoML benchmark's scaled scores (Gijsbers et al. 2019), §5.

Raw test scores per task type: roc-auc (binary), negative log-loss
(multiclass), r2 (regression).  Scores are calibrated so a constant
class-prior predictor scores 0 and a tuned random forest scores 1; "a
score above 1 is not easy".
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..learners import tuned_random_forest
from ..metrics import log_loss, r2_score, roc_auc_score

__all__ = ["raw_score", "constant_predictor_score", "rf_reference_score", "scale_score"]


def raw_score(train: Dataset, test: Dataset, model) -> float:
    """Benchmark raw score of a fitted model on the test fold."""
    if train.task == "binary":
        proba = model.predict_proba(test.X)
        classes = getattr(model, "classes_", np.unique(train.y))
        pos_col = int(np.argmax(classes)) if len(classes) == 2 else 1
        return float(roc_auc_score(test.y, proba[:, pos_col]))
    if train.task == "multiclass":
        proba = model.predict_proba(test.X)
        labels = getattr(model, "classes_", np.unique(train.y))
        return float(-log_loss(test.y, proba, labels=labels))
    return float(r2_score(test.y, model.predict(test.X)))


def constant_predictor_score(train: Dataset, test: Dataset) -> float:
    """Score of the constant class-prior / mean predictor (benchmark 0)."""
    if train.task == "binary":
        return 0.5  # any constant score ranks all pairs equally
    if train.task == "multiclass":
        classes, counts = np.unique(train.y, return_counts=True)
        prior = counts / counts.sum()
        proba = np.tile(prior, (test.n, 1))
        return float(-log_loss(test.y, proba, labels=classes))
    # r2 of the train-mean predictor
    return float(r2_score(test.y, np.full(test.n, float(np.mean(train.y)))))


def rf_reference_score(
    train: Dataset, test: Dataset, seed: int = 0, tree_num: int = 150,
    train_time_limit: float | None = 20.0,
) -> float:
    """Score of the tuned random forest (benchmark 1).

    The benchmark's reference forest is expensive ("taking a long time to
    finish"); ours gets a generous but bounded time limit.
    """
    model = tuned_random_forest(
        train.task, seed=seed, tree_num=tree_num, train_time_limit=train_time_limit
    )
    model.fit(train.X, train.y)
    return raw_score(train, test, model)


def scale_score(score: float, const_score: float, rf_score: float) -> float:
    """Calibrate: constant predictor -> 0, tuned random forest -> 1."""
    denom = rf_score - const_score
    if abs(denom) < 1e-12:
        return 0.0 if score <= const_score else 1.0
    return float((score - const_score) / denom)
