"""Time-series forecasting with the economical search.

Fits ``task="forecast"`` on a synthetic seasonal series (trend +
24-step cycle + AR noise), where every trial is scored by rolling-origin
temporal CV — no fold ever trains on the future — and the lag
featurization (``fc_lags``/``fc_window``/``fc_diff``) is searched
jointly with each learner's hyperparameters.  The fitted model is then
evaluated on a held-out tail against the seasonal-naive baseline
(plot-free: plain MASE/sMAPE numbers).

Run:  PYTHONPATH=src python examples/forecast.py
"""

import numpy as np

from repro import AutoML
from repro.data.timeseries import (
    make_timeseries,
    seasonal_naive_cv_error,
    seasonal_naive_forecast,
)
from repro.metrics import mase, smape

HORIZON = 24
PERIOD = 24

ds = make_timeseries(n=480, trend=0.04, seasonal_period=PERIOD,
                     seasonal_amp=3.0, ar=0.5, noise=0.5, seed=403)
train, actual = ds.y[:-HORIZON], ds.y[-HORIZON:]
print(f"series: {ds.n} points, period {PERIOD}, forecasting {HORIZON} ahead")

automl = AutoML(seed=0, init_sample_size=200)
automl.fit(
    None, train,
    task="forecast",
    horizon=HORIZON,
    seasonal_period=PERIOD,
    time_budget=30,
    estimator_list=["lgbm", "rf", "lrl1"],
)
print(f"best learner : {automl.best_estimator}")
print(f"lag config   : {automl.model.featurizer.to_dict()}")
print(f"search MASE  : {automl.best_loss:.4f}  (rolling-origin CV)")
print(f"naive MASE   : "
      f"{seasonal_naive_cv_error(train, HORIZON, m=PERIOD):.4f}  (same CV)")

# -- held-out tail: model vs seasonal-naive ---------------------------
pred = automl.predict(horizon=HORIZON)
naive = seasonal_naive_forecast(train, HORIZON, m=PERIOD)
print("\nheld-out tail:")
print(f"  model  MASE={mase(actual, pred, history=train, m=PERIOD):.4f}  "
      f"sMAPE={smape(actual, pred):.4f}")
print(f"  naive  MASE={mase(actual, naive, history=train, m=PERIOD):.4f}  "
      f"sMAPE={smape(actual, naive):.4f}")

# -- ship it ----------------------------------------------------------
artifact = automl.export_artifact()
artifact.save("forecast-artifact.json")
print("\nartifact -> forecast-artifact.json (serve it with:")
print("  python -m repro serve --artifact forecast-artifact.json")
print('  then POST {"history": [...], "horizon": 24} to /predict)')
