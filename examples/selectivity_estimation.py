"""Selectivity estimation for a query optimizer (paper §5.3).

The scenario the paper's introduction motivates: a database system needs a
fresh regression model per table/join expression mapping range predicates
to selectivities, with only a few CPU seconds of AutoML budget each.

This script builds a selectivity estimator for a 4-dimensional "Forest"
table, compares FLAML against the Manual configuration recommended by
Dutt et al. (XGBoost, 16 trees / 16 leaves), and reports 95th-percentile
q-error — the metric used by the selectivity-estimation literature.

Run:  python examples/selectivity_estimation.py
"""

import numpy as np

from repro import AutoML
from repro.data import MANUAL_CONFIG, load_selectivity, selectivity_to_dataset
from repro.learners import XGBLikeRegressor
from repro.metrics import q_error, q_error_percentile

# generate the table + range-query workload with exact selectivity labels
workload = load_selectivity("4D-Forest1", n_rows=10_000, n_queries=1500)
ds = selectivity_to_dataset(workload)  # features: [lo_i, hi_i]*, target: log(sel)

n_train = int(0.8 * ds.n)
train, test = ds.head(n_train), ds.subset(np.arange(n_train, ds.n))
true_sel = np.exp(test.y)

# --- FLAML with a few seconds of budget --------------------------------
automl = AutoML(init_sample_size=300)
automl.fit(
    train.X, train.y, task="regression", metric="mse", time_budget=5,
    cv_instance_threshold=2500,
)
flaml_pred = np.exp(automl.predict(test.X))

# --- the hand-tuned configuration from the literature -------------------
manual = XGBLikeRegressor(**MANUAL_CONFIG, seed=0).fit(train.X, train.y)
manual_pred = np.exp(manual.predict(test.X))

print(f"workload           : {workload.name} "
      f"({workload.table.shape[0]} rows, {workload.dim} dims, {ds.n} queries)")
print(f"FLAML best learner : {automl.best_estimator}  config={automl.best_config}")
print()
print(f"{'method':<10}{'median q-err':>14}{'95th q-err':>13}{'max q-err':>12}")
for name, pred in (("FLAML", flaml_pred), ("Manual", manual_pred)):
    qs = q_error(true_sel, pred)
    print(f"{name:<10}{np.median(qs):>14.2f}"
          f"{q_error_percentile(true_sel, pred, 95):>13.2f}{qs.max():>12.2f}")
