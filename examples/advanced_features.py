"""Appendix features in one place: stacked ensemble, stop-at-error-target,
warm starts, trial-log persistence, per-estimator best configs, and
pickle-free model files.

Run:  python examples/advanced_features.py
"""

import tempfile

import numpy as np

from repro import AutoML
from repro.core.serialize import load_result
from repro.data import make_classification
from repro.metrics import roc_auc_score

ds = make_classification(3000, 10, structure="nonlinear", seed=21)
Xtr, ytr = ds.X[:2400], ds.y[:2400]
Xte, yte = ds.X[2400:], ds.y[2400:]
FIT = dict(task="binary", cv_instance_threshold=2500)

# --- 1) plain search with a trial-log file -------------------------------
log_path = tempfile.mktemp(suffix=".json")
single = AutoML(seed=0, init_sample_size=400)
single.fit(Xtr, ytr, time_budget=4, log_file=log_path, **FIT)
auc_single = roc_auc_score(yte, single.predict_proba(Xte)[:, 1])
print(f"single model      : {single.best_estimator:<10} test auc {auc_single:.4f}")
print(f"per-estimator best: { {k: v.get('tree_num', v) for k, v in single.best_config_per_estimator.items()} }")

log = load_result(log_path)
print(f"trial log         : {log.n_trials} trials persisted to JSON")

# --- 2) warm-start a second run from the winner --------------------------
warm = AutoML(seed=1, init_sample_size=400)
warm.fit(
    Xtr, ytr, time_budget=2,
    starting_points={single.best_estimator: single.best_config}, **FIT,
)
auc_warm = roc_auc_score(yte, warm.predict_proba(Xte)[:, 1])
print(f"warm-started (2s) : {warm.best_estimator:<10} test auc {auc_warm:.4f}")

# --- 3) stacked ensemble post-processing (appendix) ----------------------
ens = AutoML(seed=0, init_sample_size=400)
ens.fit(Xtr, ytr, time_budget=4, ensemble=True, **FIT)
auc_ens = roc_auc_score(yte, ens.predict_proba(Xte)[:, 1])
print(f"stacked ensemble  : {ens.model.n_members} members   test auc {auc_ens:.4f}")

# --- 4) cheapest model below an error target (appendix) ------------------
cheap = AutoML(seed=0, init_sample_size=400)
cheap.fit(Xtr, ytr, time_budget=30, stop_at_error=0.15, **FIT)
res = cheap.search_result
print(f"stop-at-error     : reached {res.best_error:.4f} after "
      f"{res.wall_time:.1f}s / {res.n_trials} trials (budget was 30s)")

# --- 5) pickle-free model files -------------------------------------------
model_path = tempfile.mktemp(suffix=".model.json")
single.save_model(model_path)
revived = AutoML.load_model(model_path)
same = np.array_equal(single.predict(Xte), revived.predict(Xte))
print(f"model file        : saved + reloaded via JSON, predictions "
      f"identical: {same}")
