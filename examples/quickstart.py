"""Quickstart: the paper's §3 API listing, end to end.

    from repro import AutoML
    automl = AutoML()
    automl.fit(X_train, y_train, task='classification')
    prediction = automl.predict(X_test)

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AutoML
from repro.data import make_classification
from repro.metrics import roc_auc_score

# an "ad-hoc featurized dataset": mixed numeric/categorical with missing
# values, nonlinear decision surface
ds = make_classification(
    4000, 12, structure="nonlinear", cat_frac=0.25, missing_frac=0.02, seed=7
)
X_train, y_train = ds.X[:3200], ds.y[:3200]
X_test, y_test = ds.X[3200:], ds.y[3200:]

automl = AutoML(init_sample_size=500)
automl.fit(
    X_train,
    y_train,
    task="classification",
    time_budget=10,  # seconds — FLAML is built for small budgets
    cv_instance_threshold=2500,  # scaled thresholds (see DESIGN.md §2)
)
prediction = automl.predict(X_test)

print(f"best learner     : {automl.best_estimator}")
print(f"best config      : {automl.best_config}")
print(f"validation error : {automl.best_loss:.4f}")
print(f"trials run       : {automl.search_result.n_trials}")
print(f"test accuracy    : {(prediction == y_test).mean():.4f}")
print(f"test roc-auc     : {roc_auc_score(y_test, automl.predict_proba(X_test)[:, 1]):.4f}")

# anytime behaviour: the error of the best model found so far, over time
print("\nbest-so-far validation error:")
best = np.inf
for t in automl.search_result.trials:
    if t.error < best:
        best = t.error
        print(f"  t={t.automl_time:6.2f}s  error={best:.4f}  "
              f"({t.learner}, sample={t.sample_size})")
