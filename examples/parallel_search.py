"""Parallel search threads (paper appendix) — virtual and real workers.

"When abundant cores are available ... we can sample another learner by
ECI, and so on."  The ParallelSearchController schedules trials through
the pluggable execution engine (repro.exec):

* backend="virtual" simulates n_workers on a virtual clock — more
  workers complete more trials within the same virtual budget;
* backend="thread"/"process" genuinely overlaps trials on a pool, with
  completions committed in launch order so logs stay reproducible;
* every backend shares the LRU trial cache, so duplicate proposals
  (frequent on integer-valued search spaces) cost nothing.

Run:  python examples/parallel_search.py
"""

from repro.bench import best_so_far
from repro.core.parallel import ParallelSearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification
from repro.metrics import get_metric

data = make_classification(6000, 10, structure="nonlinear", seed=5,
                           name="parallel-demo").shuffled(0)
metric = get_metric("auto", task=data.task)
learners = {n: DEFAULT_LEARNERS[n] for n in ("lgbm", "xgboost", "rf", "lrl1")}

print("virtual workers (simulated clock):")
print(f"{'workers':>8}{'trials':>8}{'cache hits':>12}{'best error':>12}"
      f"{'virtual time':>14}")
for n_workers in (1, 2, 4):
    ctl = ParallelSearchController(
        data, learners, metric,
        time_budget=3.0, n_workers=n_workers, seed=0,
        init_sample_size=500, cv_instance_threshold=2500,
    )
    res = ctl.run()
    print(f"{n_workers:>8}{res.n_trials:>8}{res.cache_hits:>12}"
          f"{res.best_error:>12.4f}{res.wall_time:>13.2f}s")

print("\nreal execution backends (same budget, wall clock):")
print(f"{'backend':>8}{'workers':>8}{'trials':>8}{'best error':>12}"
      f"{'wall time':>12}")
for backend, n_workers in (("serial", 1), ("thread", 2), ("process", 2)):
    ctl = ParallelSearchController(
        data, learners, metric,
        time_budget=3.0, n_workers=n_workers, seed=0,
        init_sample_size=500, cv_instance_threshold=2500,
        backend=backend,
    )
    res = ctl.run()
    print(f"{backend:>8}{n_workers:>8}{res.n_trials:>8}"
          f"{res.best_error:>12.4f}{res.wall_time:>11.2f}s")

print("\nanytime curve with 4 virtual workers (virtual time, best error):")
ctl = ParallelSearchController(
    data, learners, metric, time_budget=3.0, n_workers=4, seed=0,
    init_sample_size=500, cv_instance_threshold=2500,
)
res = ctl.run()
last = None
for t, e in best_so_far(res.trials):
    if e != last:
        print(f"  t={t:5.2f}s  error={e:.4f}")
        last = e
