"""Parallel search threads (paper appendix) — virtual-worker demo.

"When abundant cores are available ... we can sample another learner by
ECI, and so on."  The ParallelSearchController schedules trials onto
virtual workers (this substrate simulates the wall clock; the proposer
logic is identical to real multi-core operation) — more workers complete
more trials within the same virtual budget and typically reach a better
model sooner.

Run:  python examples/parallel_search.py
"""

from repro.bench import best_so_far
from repro.core.parallel import ParallelSearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification
from repro.metrics import get_metric

data = make_classification(6000, 10, structure="nonlinear", seed=5,
                           name="parallel-demo").shuffled(0)
metric = get_metric("auto", task=data.task)
learners = {n: DEFAULT_LEARNERS[n] for n in ("lgbm", "xgboost", "rf", "lrl1")}

print(f"{'workers':>8}{'trials':>8}{'best error':>12}{'virtual time':>14}")
for n_workers in (1, 2, 4):
    ctl = ParallelSearchController(
        data, learners, metric,
        time_budget=3.0, n_workers=n_workers, seed=0,
        init_sample_size=500, cv_instance_threshold=2500,
    )
    res = ctl.run()
    print(f"{n_workers:>8}{res.n_trials:>8}{res.best_error:>12.4f}"
          f"{res.wall_time:>13.2f}s")

print("\nanytime curve with 4 workers (virtual time, best error):")
ctl = ParallelSearchController(
    data, learners, metric, time_budget=3.0, n_workers=4, seed=0,
    init_sample_size=500, cv_instance_threshold=2500,
)
res = ctl.run()
last = None
for t, e in best_so_far(res.trials):
    if e != last:
        print(f"  t={t:5.2f}s  error={e:.4f}")
        last = e
