"""Imbalanced classification: metric choice + sample weights.

Two production levers for rare-positive problems (fraud, failures — e.g.
the suite's APSFailure stand-in):

1. optimise a rank metric (roc-auc) or a calibration metric (brier)
   instead of accuracy, so the search is not rewarded for predicting the
   majority class;
2. retrain the winning configuration with balancing sample weights
   (every learner's ``fit`` accepts ``sample_weight``).

Run:  python examples/imbalanced_classification.py
"""

import numpy as np

from repro import AutoML
from repro.metrics import balanced_accuracy_score, roc_auc_score

rng = np.random.default_rng(42)
n, pos_frac = 4000, 0.04
n_pos = int(n * pos_frac)
X_neg = rng.normal(0.0, 1.0, size=(n - n_pos, 8))
X_pos = rng.normal(0.9, 1.2, size=(n_pos, 8))
X = np.vstack([X_neg, X_pos])
y = np.repeat([0, 1], [n - n_pos, n_pos])
order = rng.permutation(n)
X, y = X[order], y[order]
X_train, y_train = X[:3200], y[:3200]
X_test, y_test = X[3200:], y[3200:]

# --- search under roc-auc (rank-based: immune to the 96/4 imbalance) ----
automl = AutoML(init_sample_size=400)
automl.fit(X_train, y_train, task="binary", metric="roc_auc",
           time_budget=6.0, cv_instance_threshold=2500)
proba = automl.predict_proba(X_test)[:, 1]
print(f"winner             : {automl.best_estimator}")
print(f"test roc-auc       : {roc_auc_score(y_test, proba):.4f}")

pred_plain = automl.predict(X_test)
print(f"plain recall       : {(pred_plain[y_test == 1] == 1).mean():.2f}  "
      f"balanced acc {balanced_accuracy_score(y_test, pred_plain):.4f}")

# --- retrain the winning config with balancing weights ------------------
w = np.where(y_train == 1, (y_train == 0).sum() / (y_train == 1).sum(), 1.0)
weighted = automl.model  # same class + config, refit with weights
weighted.fit(X_train, y_train, sample_weight=w)
pred_w = weighted.predict(X_test)
print(f"weighted recall    : {(pred_w[y_test == 1] == 1).mean():.2f}  "
      f"balanced acc {balanced_accuracy_score(y_test, pred_w):.4f}")

# --- alternative: optimise the brier score directly ---------------------
brier_automl = AutoML(init_sample_size=400)
brier_automl.fit(X_train, y_train, task="binary", metric="brier",
                 time_budget=4.0, cv_instance_threshold=2500)
print(f"brier-optimised    : {brier_automl.best_estimator} "
      f"(validation brier {brier_automl.best_loss:.4f})")
