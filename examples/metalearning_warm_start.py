"""Meta-learning portfolio warm starts (the paper's §6 future-work item).

Offline, FLAML runs on a small corpus of tasks and records the best
configuration it found per learner, keyed by dataset meta-features.
Online, a new dataset retrieves its nearest corpus neighbours and their
configs become FLOW2 starting points — the search is warm-started but
otherwise unchanged, so robustness on ad-hoc data is preserved.

Run:  python examples/metalearning_warm_start.py
"""

from repro import AutoML
from repro.core.metalearning import build_portfolio, meta_features
from repro.data import load_dataset

# ---------------------------------------------------------------- offline
# Build a portfolio from three small suite tasks (in production this runs
# once, on whatever corpus is available, and the JSON ships with the app).
corpus_names = ["blood-transfusion", "phoneme", "kc1"]
corpus = [(n, load_dataset(n).shuffled(0)) for n in corpus_names]
portfolio = build_portfolio(corpus, time_budget=2.0, init_sample_size=500)
portfolio.save("/tmp/repro_portfolio.json")

print(f"portfolio built from {len(portfolio)} corpus tasks:")
for e in portfolio.entries:
    print(f"  {e.dataset:<18} best={e.best_learner:<10} "
          f"error={e.best_error:.4f}  learners={sorted(e.best_configs)}")

# ----------------------------------------------------------------- online
# A new, unseen task: retrieve suggestions and warm-start the search.
data = load_dataset("credit-g").shuffled(0)
print(f"\nnew task: credit-g  meta-features={meta_features(data).round(2)}")

neighbours = portfolio.nearest(data, k=2)
print(f"nearest corpus tasks: {[e.dataset for e in neighbours]}")

starting_points = portfolio.suggest(data, k=2)
print(f"suggested starting points for: {sorted(starting_points)}")

for label, points in [("cold start", None), ("warm start", starting_points)]:
    automl = AutoML(init_sample_size=500)
    automl.fit(
        data.X, data.y,
        task=data.task,
        time_budget=4.0,
        starting_points=points,
        cv_instance_threshold=2500,
    )
    print(f"\n{label}: best={automl.best_estimator} "
          f"error={automl.best_loss:.4f} "
          f"trials={automl.search_result.n_trials}")
    first_improvement = next(
        (t for t in automl.search_result.trials if t.improved_global), None
    )
    if first_improvement is not None:
        print(f"  first improvement at t={first_improvement.automl_time:.2f}s "
              f"error={first_improvement.error:.4f}")
