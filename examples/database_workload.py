"""The introduction's motivating scenario: ML-infused database components.

A database system builds one model per table / join expression / workload
instance (cardinality estimation, query performance prediction, ...) and
must re-tune frequently as data changes — so AutoML gets a few CPU
*seconds* per model, across many models.  This script simulates that
fleet: ten tables with different characteristics, one selectivity
estimator each, a tight per-model budget, and a fleet-level report.

Run:  python examples/database_workload.py
"""

import time

import numpy as np

from repro import AutoML
from repro.data import SELECTIVITY_DATASETS, load_selectivity, selectivity_to_dataset
from repro.metrics import q_error_percentile

PER_MODEL_BUDGET = 2.0  # seconds of AutoML per table

print(f"{'table':<12}{'dims':>5}{'automl(s)':>11}{'learner':>12}"
      f"{'median-q':>10}{'95th-q':>9}")

fleet_start = time.perf_counter()
for name in SELECTIVITY_DATASETS:
    wl = load_selectivity(name, n_rows=6000, n_queries=800)
    ds = selectivity_to_dataset(wl)
    n_tr = int(0.8 * ds.n)
    train, test = ds.head(n_tr), ds.subset(np.arange(n_tr, ds.n))

    t0 = time.perf_counter()
    automl = AutoML(init_sample_size=200)
    automl.fit(
        train.X, train.y, task="regression", metric="mse",
        time_budget=PER_MODEL_BUDGET, cv_instance_threshold=2500,
    )
    elapsed = time.perf_counter() - t0

    pred = np.exp(automl.predict(test.X))
    true = np.exp(test.y)
    q50 = q_error_percentile(true, pred, 50)
    q95 = q_error_percentile(true, pred, 95)
    print(f"{name:<12}{wl.dim:>5}{elapsed:>11.1f}{automl.best_estimator:>12}"
          f"{q50:>10.2f}{q95:>9.2f}")

total = time.perf_counter() - fleet_start
print(f"\nfleet of {len(SELECTIVITY_DATASETS)} estimators built in "
      f"{total:.0f}s ({total / len(SELECTIVITY_DATASETS):.1f}s per model)")

# ---------------------------------------------------------------------
# Data refresh: the workload drifts (new rows arrive), and each model is
# re-tuned with *half* the budget by resuming from its previous search —
# the paper's "frequent updates" loop.
print("\n-- refresh round (drifted data, half budget, resume_from) --")
name = next(iter(SELECTIVITY_DATASETS))
wl = load_selectivity(name, n_rows=6500, n_queries=900)  # refreshed table
ds = selectivity_to_dataset(wl)
n_tr = int(0.8 * ds.n)
train, test = ds.head(n_tr), ds.subset(np.arange(n_tr, ds.n))

cold = AutoML(init_sample_size=200)
cold.fit(train.X, train.y, task="regression", metric="mse",
         time_budget=PER_MODEL_BUDGET / 2, cv_instance_threshold=2500)

# `automl` still holds the last fitted model of the first round; any
# table's previous AutoML (or its saved trial log) can seed the refresh
warm = AutoML(init_sample_size=200)
warm.fit(train.X, train.y, task="regression", metric="mse",
         time_budget=PER_MODEL_BUDGET / 2, cv_instance_threshold=2500,
         resume_from=automl)

for label, model in (("cold", cold), ("resumed", warm)):
    q95 = q_error_percentile(np.exp(test.y), np.exp(model.predict(test.X)), 95)
    print(f"  {label:<8} {name}: best={model.best_estimator:<10} "
          f"95th-q={q95:.2f} trials={model.search_result.n_trials}")
