"""Serving walkthrough: fit -> artifact -> registry -> HTTP predictions.

The deployment loop downstream of ``AutoML.fit`` (ROADMAP: "serve heavy
traffic"):

1. export the fitted pipeline as a self-contained JSON artifact
   (preprocessing travels with the model, so clients send *raw* rows);
2. register it under a name in a versioned ModelRegistry and promote it
   to the ``production`` alias;
3. start the micro-batching HTTP server and predict over the wire,
   checking the answers match the in-memory model exactly.

Run:  python examples/serve_model.py

The same flow from the shell:

    python -m repro fit train.csv --register models/ --name churn
    python -m repro registry promote models/ churn 1 production
    python -m repro serve --registry models/ --port 8000
"""

import tempfile
import threading

import numpy as np

from repro import AutoML
from repro.data import make_classification
from repro.data.preprocessing import Imputer, StandardScaler
from repro.serve import ModelRegistry, ModelServer, ServeClient, build_http_server

# --- 1) fit a pipeline on raw data (NaNs handled by the Imputer) ---------
ds = make_classification(3000, 10, structure="nonlinear",
                         missing_frac=0.05, seed=3)
Xtr, ytr = ds.X[:2400], ds.y[:2400]
Xte, yte = ds.X[2400:], ds.y[2400:]

automl = AutoML(seed=0, init_sample_size=500)
automl.fit(Xtr, ytr, task="classification", time_budget=8,
           cv_instance_threshold=2500,
           preprocessor=[Imputer(strategy="median"), StandardScaler()])
print(f"fitted            : {automl.best_estimator} "
      f"(val error {automl.best_loss:.4f})")

# --- 2) export + register + promote --------------------------------------
artifact = automl.export_artifact(metadata={"owner": "examples"})
registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
version = registry.register("churn", artifact)
registry.promote("churn", version, "production")
print(f"registered        : churn v{version} -> alias 'production' "
      f"({registry.root})")

# --- 3) serve over HTTP and predict --------------------------------------
server = ModelServer(registry=registry, max_batch=32, max_delay_ms=2.0)
httpd = build_http_server(server, port=0)  # 0 = pick a free port
threading.Thread(target=httpd.serve_forever, daemon=True).start()
url = f"http://127.0.0.1:{httpd.server_address[1]}"
client = ServeClient(url)
print(f"serving           : {client.health()['models']} at {url}")

remote = client.predict(Xte, model="churn", version="production")
local = automl.predict(Xte)
print(f"http == in-memory : {np.array_equal(remote, local)} "
      f"({len(remote)} rows)")
proba = client.predict(Xte[0], model="churn", proba=True)
print(f"single-row proba  : {np.round(proba, 4)} (micro-batched)")

stats = client.metrics()[f"churn@{version}"]
print(f"serving metrics   : {stats['requests']} requests, "
      f"p99 latency {stats.get('latency_ms_p99', 0):.2f} ms")

httpd.shutdown()
httpd.server_close()
server.close()
