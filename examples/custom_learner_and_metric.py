"""Customisation: add your own learner and metric (paper §3's second listing).

    automl.add_learner(learner_name='mylearner', learner_class=MyLearner)
    automl.fit(X_train, y_train, metric=mymetric, time_budget=60,
               estimator_list=['mylearner', 'xgboost'])

FLAML needs no meta-learning retraining after customisation — the custom
learner participates in ECI-based prioritisation immediately.

Run:  python examples/custom_learner_and_metric.py
"""

import numpy as np

from repro import AutoML
from repro.core.space import LogRandInt, LogUniform, SearchSpace
from repro.data import make_classification
from repro.learners import LGBMLikeClassifier


# --- a custom learner: shallow "stump ensemble" ------------------------
class StumpEnsemble(LGBMLikeClassifier):
    """Boosted depth-limited trees with its own (small) search space."""

    #: relative cost of the cheapest config vs lgbm's (seeds its ECI)
    cost_relative2lgbm = 0.8

    def __init__(self, tree_num=50, learning_rate=0.3, **kw):
        super().__init__(tree_num=tree_num, leaf_num=2,
                         learning_rate=learning_rate, **kw)

    @classmethod
    def search_space(cls, data_size, task):
        return SearchSpace(
            {
                "tree_num": LogRandInt(4, min(1024, data_size), init=4),
                "learning_rate": LogUniform(0.01, 1.0, init=0.3),
            }
        )


# --- a custom metric: cost-sensitive error ------------------------------
def mymetric(y_true, y_pred):
    """False negatives cost 5x more than false positives (lower=better)."""
    fn = np.mean((y_true == 1) & (y_pred == 0))
    fp = np.mean((y_true == 0) & (y_pred == 1))
    return 5.0 * fn + fp


ds = make_classification(3000, 8, imbalance=0.6, seed=11)
X_train, y_train = ds.X[:2400], ds.y[:2400]
X_test, y_test = ds.X[2400:], ds.y[2400:]

automl = AutoML(init_sample_size=400)
automl.add_learner(learner_name="mylearner", learner_class=StumpEnsemble)
automl.fit(
    X_train, y_train,
    metric=mymetric,
    time_budget=6,
    estimator_list=["mylearner", "xgboost"],
    cv_instance_threshold=2500,
)

pred = automl.predict(X_test)
print(f"winner            : {automl.best_estimator}")
print(f"best config       : {automl.best_config}")
print(f"validation metric : {automl.best_loss:.4f}")
print(f"test metric       : {mymetric(y_test, pred):.4f}")
counts = {n: 0 for n in ('mylearner', 'xgboost')}
for t in automl.search_result.trials:
    counts[t.learner] += 1
print(f"trials per learner: {counts}")
