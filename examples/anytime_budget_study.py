"""Anytime performance across budgets (the behaviour behind Figures 1/6).

Runs FLAML and a BOHB baseline on the same task at increasing budgets and
shows how their best test scores evolve — FLAML's defining property is
that tiny budgets already produce competitive models.

Run:  python examples/anytime_budget_study.py
"""

from repro.baselines import BOHB, FLAMLSystem
from repro.bench import (
    SCALED_THRESHOLDS,
    constant_predictor_score,
    fit_final_model,
    raw_score,
    rf_reference_score,
    scale_score,
)
from repro.data import make_classification
from repro.metrics import get_metric

ds = make_classification(8000, 14, structure="nonlinear", class_sep=0.9, seed=3,
                         name="budget-study")
train, test = ds.outer_folds(5)[0]
metric = get_metric("auto", task=ds.task)

const = constant_predictor_score(train, test)
rf = rf_reference_score(train, test, train_time_limit=10.0)
print(f"calibration: constant predictor={const:.3f}, tuned RF={rf:.3f}")
print(f"\n{'budget':>8}{'FLAML scaled':>14}{'BOHB scaled':>13}")

train_sh = train.shuffled(0)
for budget in (0.5, 2.0, 8.0):
    row = f"{budget:>7.1f}s"
    for system in (
        FLAMLSystem(init_sample_size=500, **SCALED_THRESHOLDS),
        BOHB(min_sample=500, **SCALED_THRESHOLDS),
    ):
        res = system.search(train_sh, metric, time_budget=budget, seed=0)
        model = fit_final_model(train_sh, res, time_limit=budget)
        score = raw_score(train, test, model) if model else const
        row += f"{scale_score(score, const, rf):>13.3f} "
    print(row)

print("\n(0 = constant predictor, 1 = tuned random forest; higher is better)")
