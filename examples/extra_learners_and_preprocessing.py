"""Extensions beyond the paper's Table 5: extra learners, preprocessors
and the fitted ECI₂ cost model.

* ``estimator_list`` can name the extra learners (``xgb_limitdepth``,
  ``kneighbor``, ``gaussian_nb``, ``lrl2``) — they never enter the default
  list, so the paper's behaviour is untouched unless you ask.
* ``preprocessor=`` chains footnote-2 feature preprocessors in front of
  the whole search (fitted once, re-applied at predict time).
* ``fitted_cost_model=True`` activates the §4.2 refinement: the
  cost-vs-sample-size exponent is learned per learner instead of assuming
  linear training complexity.

Run:  python examples/extra_learners_and_preprocessing.py
"""

import numpy as np

from repro import AutoML
from repro.data import Imputer, StandardScaler, make_classification

# a messy dataset: missing values + mixed feature scales
ds = make_classification(3000, 10, structure="nonlinear",
                         missing_frac=0.05, seed=11)
scales = np.logspace(-2, 3, ds.d)
X = ds.X * scales  # wildly different feature scales
X_train, y_train = X[:2400], ds.y[:2400]
X_test, y_test = X[2400:], ds.y[2400:]

# ---- extra learners: kNN is scale-sensitive, NB is the cheap anchor ----
automl = AutoML(init_sample_size=400)
automl.fit(
    X_train, y_train,
    task="classification",
    time_budget=6.0,
    estimator_list=["lgbm", "xgb_limitdepth", "kneighbor", "gaussian_nb"],
    preprocessor=[Imputer("median"), StandardScaler()],
    cv_instance_threshold=2500,
)
print(f"winner          : {automl.best_estimator}")
print(f"config          : {automl.best_config}")
print(f"test accuracy   : {(automl.predict(X_test) == y_test).mean():.4f}")

trials_by_learner = {}
for t in automl.search_result.trials:
    trials_by_learner[t.learner] = trials_by_learner.get(t.learner, 0) + 1
print(f"trials/learner  : {trials_by_learner}")

# ---- fitted cost model: compare sample-up schedules -------------------
for fitted in (False, True):
    a = AutoML(init_sample_size=200)
    a.fit(X_train, y_train, task="classification", time_budget=3.0,
          estimator_list=["lgbm"], fitted_cost_model=fitted,
          preprocessor=[Imputer("median")], cv_instance_threshold=2500)
    ups = [t.sample_size for t in a.search_result.trials
           if t.kind == "sample_up"]
    label = "fitted alpha" if fitted else "linear (paper)"
    print(f"\nECI2={label:<15} best={a.best_loss:.4f} "
          f"trials={a.search_result.n_trials} sample-ups at {ups}")
